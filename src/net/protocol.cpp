#include "net/protocol.hpp"

#include <cstring>
#include <sstream>

#include "tensor/io.hpp"

namespace hero::net {

namespace {

using io::read_pod;
using io::write_pod;

/// Model names ride in request frames; keep them shorter than full string
/// payloads so a hostile frame cannot park a megabyte in every request slot.
constexpr std::uint32_t kMaxModelNameLen = 1024;

std::string finish_frame(FrameType type, std::uint64_t id, std::string body) {
  HERO_CHECK_MSG(body.size() <= kMaxFrameBody,
                 "frame body of " << body.size() << " bytes exceeds the "
                                  << kMaxFrameBody << "-byte cap");
  std::ostringstream header;
  header.write(kMagic, sizeof(kMagic));
  write_pod(header, kVersion);
  write_pod(header, static_cast<std::uint32_t>(type));
  write_pod(header, id);
  write_pod(header, static_cast<std::uint32_t>(body.size()));
  return header.str() + body;
}

/// Wraps a body in an istringstream and checks it is fully consumed after
/// `parse` ran — trailing bytes mean a corrupt or hostile frame.
template <typename Parse>
auto parse_body(const std::string& body, const char* what, Parse parse) {
  std::istringstream in(body);
  auto result = parse(in);
  // tellg() lands at the consumed-byte count while the stream is good; a
  // parse that read exactly to the end leaves no remainder.
  const auto pos = in.tellg();
  const bool consumed =
      pos == std::istringstream::pos_type(-1)
          ? in.eof()
          : static_cast<std::size_t>(pos) == body.size();
  HERO_CHECK_MSG(consumed, what << " frame body carries trailing bytes");
  return result;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kUnknownModel: return "unknown_model";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

std::string encode_request(const RequestFrame& frame) {
  HERO_CHECK_MSG(frame.model.size() <= kMaxModelNameLen,
                 "model name of " << frame.model.size() << " bytes exceeds the "
                                  << kMaxModelNameLen << "-byte cap");
  std::ostringstream body;
  write_string(body, frame.model);
  save_tensor(body, frame.features);
  if (frame.has_trace()) {
    body.write(kTraceContextMagic, sizeof(kTraceContextMagic));
    write_pod(body, frame.trace_id);
    write_pod(body, frame.parent_span);
  }
  return finish_frame(FrameType::kRequest, frame.id, body.str());
}

std::string encode_response(const ResponseFrame& frame) {
  std::ostringstream body;
  save_tensor(body, frame.logits);
  return finish_frame(FrameType::kResponse, frame.id, body.str());
}

std::string encode_error(const ErrorFrame& frame) {
  std::ostringstream body;
  write_pod(body, static_cast<std::uint32_t>(frame.code));
  write_string(body, frame.message);
  return finish_frame(FrameType::kError, frame.id, body.str());
}

std::string encode_stats_request(std::uint64_t id) {
  return finish_frame(FrameType::kStatsRequest, id, std::string());
}

std::string encode_stats_response(const StatsResponseFrame& frame) {
  std::ostringstream body;
  write_string(body, frame.json);
  return finish_frame(FrameType::kStatsResponse, frame.id, body.str());
}

FrameHeader decode_header(const char* bytes) {
  HERO_CHECK_MSG(std::memcmp(bytes, kMagic, sizeof(kMagic)) == 0,
                 "bad frame magic (not an HNET stream)");
  std::istringstream in(std::string(bytes + sizeof(kMagic),
                                    kHeaderBytes - sizeof(kMagic)));
  const auto version = read_pod<std::uint32_t>(in);
  HERO_CHECK_MSG(version == kVersion, "unsupported HNET protocol version " << version);
  const auto type = read_pod<std::uint32_t>(in);
  HERO_CHECK_MSG(type >= static_cast<std::uint32_t>(FrameType::kRequest) &&
                     type <= static_cast<std::uint32_t>(FrameType::kStatsResponse),
                 "unknown HNET frame type " << type);
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.id = read_pod<std::uint64_t>(in);
  header.body_bytes = read_pod<std::uint32_t>(in);
  HERO_CHECK_MSG(header.body_bytes <= kMaxFrameBody,
                 "frame declares a " << header.body_bytes
                                     << "-byte body, above the " << kMaxFrameBody
                                     << "-byte cap (hostile length prefix?)");
  return header;
}

RequestFrame decode_request_body(const FrameHeader& header, const std::string& body) {
  HERO_CHECK_MSG(header.type == FrameType::kRequest, "not a request frame");
  return parse_body(body, "request", [&](std::istream& in) {
    RequestFrame frame;
    frame.id = header.id;
    frame.model = read_string(in, kMaxModelNameLen);
    frame.features = load_tensor(in);
    // Optional trace-context extension. Bytes after the tensor must be a
    // complete, well-formed extension: anything else is hostile (truncation
    // and trailing bytes surface through read_pod / parse_body).
    if (in.peek() != std::istream::traits_type::eof()) {
      char magic[sizeof(kTraceContextMagic)] = {};
      in.read(magic, sizeof(magic));
      HERO_CHECK_MSG(in.good() && std::memcmp(magic, kTraceContextMagic,
                                              sizeof(magic)) == 0,
                     "request frame carries bytes after the tensor that are "
                     "not a trace-context extension");
      frame.trace_id = read_pod<std::uint64_t>(in);
      frame.parent_span = read_pod<std::uint64_t>(in);
      HERO_CHECK_MSG(frame.trace_id != 0,
                     "trace-context extension carries a zero trace id");
    }
    return frame;
  });
}

ResponseFrame decode_response_body(const FrameHeader& header, const std::string& body) {
  HERO_CHECK_MSG(header.type == FrameType::kResponse, "not a response frame");
  return parse_body(body, "response", [&](std::istream& in) {
    ResponseFrame frame;
    frame.id = header.id;
    frame.logits = load_tensor(in);
    return frame;
  });
}

void decode_stats_request_body(const FrameHeader& header, const std::string& body) {
  HERO_CHECK_MSG(header.type == FrameType::kStatsRequest, "not a stats request frame");
  // The strictest body check in the protocol: a stats request has nothing to
  // say, so any payload byte means a corrupt or hostile stream.
  HERO_CHECK_MSG(body.empty(),
                 "stats request frame carries a " << body.size()
                                                  << "-byte body (must be empty)");
}

StatsResponseFrame decode_stats_response_body(const FrameHeader& header,
                                              const std::string& body) {
  HERO_CHECK_MSG(header.type == FrameType::kStatsResponse,
                 "not a stats response frame");
  return parse_body(body, "stats response", [&](std::istream& in) {
    StatsResponseFrame frame;
    frame.id = header.id;
    frame.json = read_string(in, kMaxFrameBody);
    return frame;
  });
}

ErrorFrame decode_error_body(const FrameHeader& header, const std::string& body) {
  HERO_CHECK_MSG(header.type == FrameType::kError, "not an error frame");
  return parse_body(body, "error", [&](std::istream& in) {
    ErrorFrame frame;
    frame.id = header.id;
    const auto code = read_pod<std::uint32_t>(in);
    HERO_CHECK_MSG(code >= static_cast<std::uint32_t>(ErrorCode::kBadFrame) &&
                       code <= static_cast<std::uint32_t>(ErrorCode::kInternal),
                   "unknown HNET error code " << code);
    frame.code = static_cast<ErrorCode>(code);
    frame.message = read_string(in);
    return frame;
  });
}

}  // namespace hero::net
