#include "quant/quantizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace hero::quant {

namespace {

/// Target elements per parallel_for chunk when partitioning channels; keeps
/// chunk boundaries a pure function of the tensor shape (never the thread
/// count), so per-channel quantization is bit-identical at any --threads=N.
constexpr std::int64_t kChannelGrainElems = 4096;

/// Quantizes a strided run of `count` floats sharing one scale (stride 1 for
/// per-tensor / conv-slab channels, the column stride for linear channels —
/// no gather/scatter temporaries). Returns the bin width. noexcept so it can
/// run inside a thread-pool body: a NaN/Inf input sets *nonfinite (the run's
/// output is then unspecified) instead of throwing.
float quantize_run(const float* src, float* dst, std::int64_t count, std::int64_t stride,
                   int bits, Scheme scheme, bool* nonfinite) noexcept {
  float lo = src[0];
  float hi = src[0];
  bool finite = true;
  for (std::int64_t i = 0; i < count; ++i) {
    const float v = src[i * stride];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    finite &= std::isfinite(v);
  }
  if (!finite) {
    // NaN slips through min/max (comparisons are false), so the grid would
    // silently poison the whole run; the caller turns this into HERO_CHECK.
    *nonfinite = true;
    return 0.0f;
  }
  if (lo == hi) {
    // Constant tensor: representable exactly under either scheme.
    for (std::int64_t i = 0; i < count; ++i) dst[i * stride] = src[i * stride];
    return 0.0f;
  }
  if (scheme == Scheme::kSymmetric) {
    // Zero-preserving signed grid (the standard symmetric convention, as in
    // HAWQ and the paper's W4/W8 setup): delta = max|w| / (2^(bits-1) - 1),
    // q = round(w / delta) clamped to ±(2^(bits-1) - 1). Zero is exactly
    // representable and the grid is odd-symmetric: Q(-w) == -Q(w).
    const float max_abs = std::max(std::fabs(lo), std::fabs(hi));
    const auto half_levels = static_cast<float>((1LL << (bits - 1)) - 1);
    if (half_levels == 0.0f) {
      // bits == 1 degenerates to a sign quantizer onto {-max|w|, 0, +max|w|}.
      for (std::int64_t i = 0; i < count; ++i) {
        const float v = src[i * stride];
        dst[i * stride] = v > 0.0f ? max_abs : (v < 0.0f ? -max_abs : 0.0f);
      }
      return 2.0f * max_abs;
    }
    const float delta = max_abs / half_levels;
    for (std::int64_t i = 0; i < count; ++i) {
      float q = std::round(src[i * stride] / delta);
      q = std::min(std::max(q, -half_levels), half_levels);  // clamp to ±max|w|
      dst[i * stride] = q * delta;
    }
    return delta;
  }
  // Asymmetric: affine grid with 2^n - 1 steps of delta over [lo, hi], but
  // anchored on integer multiples of delta (zero-point nudged to the nearest
  // grid index — the standard asymmetric convention). The representable
  // window still covers [lo, hi] to within delta/2, and 0.0 is a grid point
  // whenever lo <= 0 <= hi, so pruned/zero weights dequantize to exactly
  // 0.0f instead of a fractional offset. Bin indices are computed relative
  // to the anchor in double: a raw round(w / delta) would need |lo|/delta
  // units of integer precision and mis-bins once the offset dominates the
  // range (e.g. values 300.0..300.001). For w == 0 the two anchor products
  // cancel exactly, so the zero guarantee survives the double round trip.
  const auto levels = static_cast<float>((1LL << bits) - 1);
  const float delta = (hi - lo) / levels;
  const double delta_d = static_cast<double>(delta);
  const double anchor = std::round(static_cast<double>(lo) / delta_d) * delta_d;
  for (std::int64_t i = 0; i < count; ++i) {
    double q = std::round((static_cast<double>(src[i * stride]) - anchor) / delta_d);
    q = std::min(std::max(q, 0.0), static_cast<double>(levels));
    dst[i * stride] = static_cast<float>(anchor + q * delta_d);
  }
  return delta;
}

/// Output-channel axis for per-channel quantization: conv weights
/// [out, in, k, k] use dim 0; linear weights [in, out] use dim 1.
std::int64_t channel_axis(const Tensor& w) { return w.ndim() == 2 ? 1 : 0; }

/// The built-in linear uniform quantizer: Scheme x Granularity, spelled
/// "sym"/"asym" (+ per_channel) in specs.
class UniformQuantizer : public Quantizer {
 public:
  UniformQuantizer(Scheme scheme, bool per_channel)
      : scheme_(scheme), per_channel_(per_channel) {}

  Tensor quantize(const Tensor& w, int bits, QuantStats* stats) const override {
    HERO_CHECK_MSG(bits >= 1 && bits <= 16,
                   "quantization bits must be in [1, 16], got " << bits);
    Tensor out(w.shape());
    float max_delta = 0.0f;
    bool nonfinite = false;

    if (!per_channel_ || w.ndim() <= 1) {
      max_delta = quantize_run(w.data(), out.data(), w.numel(), 1, bits, scheme_, &nonfinite);
    } else {
      const std::int64_t axis = channel_axis(w);
      const std::int64_t channels = w.dim(axis);
      // Per-channel deltas land in per-channel slots, so chunks never share
      // state; the serial max below keeps the reduction deterministic.
      std::vector<float> deltas(static_cast<std::size_t>(channels), 0.0f);
      std::atomic<bool> bad{false};
      if (axis == 0) {
        // Channels are contiguous slabs.
        const std::int64_t slab = w.numel() / channels;
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, slab));
        runtime::parallel_for(0, channels, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool nf = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            deltas[static_cast<std::size_t>(c)] =
                quantize_run(w.data() + c * slab, out.data() + c * slab, slab, 1, bits,
                             scheme_, &nf);
          }
          if (nf) bad.store(true, std::memory_order_relaxed);
        });
      } else {
        // Linear [in, out]: each output column is a strided run (stride =
        // cols) quantized in place — no per-column gather/scatter buffers.
        const std::int64_t rows = w.dim(0);
        const std::int64_t cols = w.dim(1);
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, rows));
        runtime::parallel_for(0, cols, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool nf = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            deltas[static_cast<std::size_t>(c)] =
                quantize_run(w.data() + c, out.data() + c, rows, cols, bits, scheme_, &nf);
          }
          if (nf) bad.store(true, std::memory_order_relaxed);
        });
      }
      nonfinite = bad.load(std::memory_order_relaxed);
      if (!nonfinite) max_delta = *std::max_element(deltas.begin(), deltas.end());
    }
    HERO_CHECK_MSG(!nonfinite,
                   "quantization input " << shape_to_string(w.shape())
                                         << " contains a non-finite value (NaN/Inf); the "
                                            "grid range would be poisoned");

    if (stats != nullptr) {
      stats->max_bin_width = max_delta;
      stats->max_abs_error = max_abs_diff(out, w);
      double mse = 0.0;
      for (std::int64_t i = 0; i < w.numel(); ++i) {
        const double d = static_cast<double>(out.data()[i]) - w.data()[i];
        mse += d * d;
      }
      stats->mse = static_cast<float>(mse / static_cast<double>(w.numel()));
    }
    return out;
  }

  std::string describe() const override {
    std::string name = scheme_ == Scheme::kSymmetric ? "sym" : "asym";
    return name + (per_channel_ ? "/per-channel" : "/per-tensor");
  }

 private:
  Scheme scheme_;
  bool per_channel_;
};

HERO_REGISTER_QUANTIZER(
    "sym",
    [](const SpecConfig& config) -> std::shared_ptr<Quantizer> {
      return std::make_shared<UniformQuantizer>(Scheme::kSymmetric,
                                                spec_bool(config, "per_channel", false, "quantizer"));
    },
    std::vector<std::string>{"per_channel"}, std::vector<std::string>{"symmetric"})

HERO_REGISTER_QUANTIZER(
    "asym",
    [](const SpecConfig& config) -> std::shared_ptr<Quantizer> {
      return std::make_shared<UniformQuantizer>(Scheme::kAsymmetric,
                                                spec_bool(config, "per_channel", false, "quantizer"));
    },
    std::vector<std::string>{"per_channel"}, std::vector<std::string>{"asymmetric"})

}  // namespace

QuantizerRegistry& QuantizerRegistry::instance() {
  static QuantizerRegistry registry;
  return registry;
}

void QuantizerRegistry::add(const std::string& name, Factory factory,
                            const std::vector<std::string>& accepted_keys,
                            const std::vector<std::string>& aliases) {
  HERO_CHECK_MSG(!name.empty(), "cannot register a quantizer with an empty name");
  HERO_CHECK_MSG(entries_.find(name) == entries_.end(),
                 "quantizer '" << name << "' registered twice");
  entries_[name] = Entry{factory, accepted_keys, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    HERO_CHECK_MSG(entries_.find(alias) == entries_.end(),
                   "quantizer alias '" << alias << "' registered twice");
    entries_[alias] = Entry{factory, accepted_keys, /*is_alias=*/true};
  }
}

std::shared_ptr<Quantizer> QuantizerRegistry::create(const std::string& name,
                                                     const SpecConfig& config) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown quantizer '" + name + "' (registered: " + join_names(names()) + ")");
  }
  check_known_spec_keys(config, it->second.accepted_keys, "quantizer '" + name + "'");
  return it->second.factory(config);
}

bool QuantizerRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

bool QuantizerRegistry::accepts_key(const std::string& name, const std::string& key) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  const auto& keys = it->second.accepted_keys;
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

std::vector<std::string> QuantizerRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

QuantizerRegistration::QuantizerRegistration(const std::string& name,
                                             QuantizerRegistry::Factory factory,
                                             const std::vector<std::string>& accepted_keys,
                                             const std::vector<std::string>& aliases) {
  QuantizerRegistry::instance().add(name, std::move(factory), accepted_keys, aliases);
}

LayerQuantSpec parse_layer_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec, "quantizer", /*allow_bare_keys=*/true);
  LayerQuantSpec out;
  out.bits = spec_int(parsed.config, "bits", 8, "quantizer");
  HERO_CHECK_MSG(out.bits >= 1 && out.bits <= 16,
                 "quantizer spec bits must be in [1, 16], got " << out.bits << " in '" << spec
                                                                << "'");
  // "bits" belongs to the LayerQuantSpec, not the quantizer: erase it so
  // factories only declare (and see) their own keys.
  parsed.config.erase("bits");
  out.quantizer = QuantizerRegistry::instance().create(parsed.name, parsed.config);
  return out;
}

std::string with_bits(const std::string& quantizer_spec, int bits) {
  const char sep = quantizer_spec.find(':') == std::string::npos ? ':' : ',';
  return quantizer_spec + sep + "bits=" + std::to_string(bits);
}

double QuantPlan::average_bits() const {
  if (layers.empty()) return 0.0;
  double weighted = 0.0;
  double total = 0.0;
  for (const LayerQuantSpec& layer : layers) {
    const double w = layer.numel > 0 ? static_cast<double>(layer.numel) : 1.0;
    weighted += w * layer.bits;
    total += w;
  }
  return weighted / total;
}

std::string QuantPlan::describe() const {
  std::ostringstream os;
  for (const LayerQuantSpec& layer : layers) {
    os << (layer.layer.empty() ? "?" : layer.layer) << "  " << layer.bits << "-bit "
       << (layer.quantizer ? layer.quantizer->describe() : "?");
    if (layer.numel > 0) os << "  (" << layer.numel << " weights";
    if (layer.sensitivity > 0.0) os << ", sensitivity " << layer.sensitivity;
    if (layer.numel > 0) os << ")";
    os << "\n";
  }
  return os.str();
}

QuantPlan uniform_plan(nn::Module& model, const LayerQuantSpec& layer) {
  HERO_CHECK_MSG(layer.quantizer != nullptr, "uniform_plan needs a quantizer");
  QuantPlan plan;
  std::size_t i = 0;
  for (nn::Parameter* p : model.weight_parameters()) {
    LayerQuantSpec slot = layer;
    slot.layer = "w" + std::to_string(i++) + " " + shape_to_string(p->var.value().shape());
    slot.numel = p->var.value().numel();
    plan.layers.push_back(std::move(slot));
  }
  return plan;
}

std::shared_ptr<Quantizer> make_uniform_quantizer(Scheme scheme, Granularity granularity) {
  return std::make_shared<UniformQuantizer>(scheme,
                                            granularity == Granularity::kPerChannel);
}

}  // namespace hero::quant
