#include "quant/quantizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace hero::quant {

namespace {

/// Target elements per parallel_for chunk when partitioning channels; keeps
/// chunk boundaries a pure function of the tensor shape (never the thread
/// count), so per-channel quantization is bit-identical at any --threads=N.
constexpr std::int64_t kChannelGrainElems = 4096;

/// Quantizes a strided run of `count` floats sharing one scale (stride 1 for
/// per-tensor / conv-slab channels, the column stride for linear channels —
/// no gather/scatter temporaries). Returns the bin width. noexcept so it can
/// run inside a thread-pool body: a NaN/Inf input sets *nonfinite (the run's
/// output is then unspecified) instead of throwing.
float quantize_run(const float* src, float* dst, std::int64_t count, std::int64_t stride,
                   int bits, Scheme scheme, bool* nonfinite) noexcept {
  float lo = src[0];
  float hi = src[0];
  bool finite = true;
  for (std::int64_t i = 0; i < count; ++i) {
    const float v = src[i * stride];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    finite &= std::isfinite(v);
  }
  if (!finite) {
    // NaN slips through min/max (comparisons are false), so the grid would
    // silently poison the whole run; the caller turns this into HERO_CHECK.
    *nonfinite = true;
    return 0.0f;
  }
  if (lo == hi) {
    // Constant tensor: representable exactly under either scheme. "+ 0.0f"
    // canonicalizes -0.0 elements to +0.0 (identity otherwise) so the
    // integer encoding, whose single per-run code cannot carry individual
    // zero signs, decodes bit-identically.
    for (std::int64_t i = 0; i < count; ++i) dst[i * stride] = src[i * stride] + 0.0f;
    return 0.0f;
  }
  if (scheme == Scheme::kSymmetric) {
    // Zero-preserving signed grid (the standard symmetric convention, as in
    // HAWQ and the paper's W4/W8 setup): delta = max|w| / (2^(bits-1) - 1),
    // q = round(w / delta) clamped to ±(2^(bits-1) - 1). Zero is exactly
    // representable and the grid is odd-symmetric: Q(-w) == -Q(w).
    const float max_abs = std::max(std::fabs(lo), std::fabs(hi));
    const auto half_levels = static_cast<float>((1LL << (bits - 1)) - 1);
    if (half_levels == 0.0f) {
      // bits == 1 degenerates to a sign quantizer onto {-max|w|, 0, +max|w|}.
      for (std::int64_t i = 0; i < count; ++i) {
        const float v = src[i * stride];
        dst[i * stride] = v > 0.0f ? max_abs : (v < 0.0f ? -max_abs : 0.0f);
      }
      return 2.0f * max_abs;
    }
    const float delta = max_abs / half_levels;
    for (std::int64_t i = 0; i < count; ++i) {
      float q = std::round(src[i * stride] / delta);
      q = std::min(std::max(q, -half_levels), half_levels);  // clamp to ±max|w|
      // "+ 0.0f" canonicalizes q = -0.0 (tiny negative inputs) to +0.0 — the
      // identity for every other value — so the integer encoding, which
      // cannot carry a zero's sign bit, decodes bit-identically.
      dst[i * stride] = q * delta + 0.0f;
    }
    return delta;
  }
  // Asymmetric: affine grid with 2^n - 1 steps of delta over [lo, hi], but
  // anchored on integer multiples of delta (zero-point nudged to the nearest
  // grid index — the standard asymmetric convention). The representable
  // window still covers [lo, hi] to within delta/2, and 0.0 is a grid point
  // whenever lo <= 0 <= hi, so pruned/zero weights dequantize to exactly
  // 0.0f instead of a fractional offset. Bin indices are computed relative
  // to the anchor in double: a raw round(w / delta) would need |lo|/delta
  // units of integer precision and mis-bins once the offset dominates the
  // range (e.g. values 300.0..300.001). For w == 0 the two anchor products
  // cancel exactly, so the zero guarantee survives the double round trip.
  const auto levels = static_cast<float>((1LL << bits) - 1);
  const float delta = (hi - lo) / levels;
  const double delta_d = static_cast<double>(delta);
  const double anchor = std::round(static_cast<double>(lo) / delta_d) * delta_d;
  for (std::int64_t i = 0; i < count; ++i) {
    double q = std::round((static_cast<double>(src[i * stride]) - anchor) / delta_d);
    q = std::min(std::max(q, 0.0), static_cast<double>(levels));
    // "+ 0.0" canonicalizes the anchor = q = -0.0 corner (lo within half a
    // bin of zero, tiny negative input) to +0.0, matching the integer
    // encoding, which cannot carry a zero's sign bit. Identity otherwise.
    dst[i * stride] = static_cast<float>(anchor + q * delta_d + 0.0);
  }
  return delta;
}

/// Output-channel axis for per-channel quantization: conv weights
/// [out, in, k, k] use dim 0; linear weights [in, out] use dim 1.
std::int64_t channel_axis(const Tensor& w) { return w.ndim() == 2 ? 1 : 0; }

/// Integer twin of quantize_run: emits the grid *codes* instead of the
/// dequantized floats, plus the (scale, zero_point) pair decode_run
/// (quant/encoding.cpp) needs to reproduce quantize_run's output bit for
/// bit. Every grid computation below is copied from quantize_run expression
/// for expression — if one changes, change both (the encoding bit-identity
/// tests pin the pairing).
///
/// Code conventions (all codes are unsigned, ready for bit-packing):
///   symmetric:  code = q + half_levels, zp = half_levels, scale = Δ
///   sym 1-bit:  code = sign + 1 ∈ {0,1,2}, zp = 1, scale = max|w| (3 grid
///               points → needs code_bits = 2)
///   asymmetric: code = q ∈ [0, 2^bits − 1], zp = round(lo/Δ), scale = Δ
///   constant:   code = 1, zp = 0, scale = c (decodes to 1·c == c exactly
///               under both schemes' decode formulas)
void encode_run(const float* src, std::uint32_t* codes, std::int64_t count,
                std::int64_t stride, int bits, Scheme scheme, float* scale,
                std::int64_t* zero_point, bool* bad) noexcept {
  float lo = src[0];
  float hi = src[0];
  bool finite = true;
  for (std::int64_t i = 0; i < count; ++i) {
    const float v = src[i * stride];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    finite &= std::isfinite(v);
  }
  if (!finite) {
    *bad = true;
    *scale = 0.0f;
    *zero_point = 0;
    return;
  }
  if (lo == hi) {
    for (std::int64_t i = 0; i < count; ++i) codes[i * stride] = 1;
    *scale = lo + 0.0f;  // canonicalize a -0.0 constant, matching quantize_run
    *zero_point = 0;
    return;
  }
  if (scheme == Scheme::kSymmetric) {
    const float max_abs = std::max(std::fabs(lo), std::fabs(hi));
    const auto half_levels = static_cast<float>((1LL << (bits - 1)) - 1);
    if (half_levels == 0.0f) {
      for (std::int64_t i = 0; i < count; ++i) {
        const float v = src[i * stride];
        codes[i * stride] = v > 0.0f ? 2u : (v < 0.0f ? 0u : 1u);
      }
      *scale = max_abs;
      *zero_point = 1;
      return;
    }
    const float delta = max_abs / half_levels;
    const auto half = static_cast<std::int64_t>(half_levels);
    for (std::int64_t i = 0; i < count; ++i) {
      float q = std::round(src[i * stride] / delta);
      q = std::min(std::max(q, -half_levels), half_levels);
      codes[i * stride] = static_cast<std::uint32_t>(static_cast<std::int64_t>(q) + half);
    }
    *scale = delta;
    *zero_point = half;
    return;
  }
  const auto levels = static_cast<float>((1LL << bits) - 1);
  const float delta = (hi - lo) / levels;
  const double delta_d = static_cast<double>(delta);
  const double anchor_index = std::round(static_cast<double>(lo) / delta_d);
  if (!(std::fabs(anchor_index) < 9.0e18)) {
    // Grid offset beyond int64: the range is absurdly narrow relative to its
    // magnitude; refuse rather than overflow the zero-point.
    *bad = true;
    *scale = 0.0f;
    *zero_point = 0;
    return;
  }
  const double anchor = anchor_index * delta_d;
  for (std::int64_t i = 0; i < count; ++i) {
    double q = std::round((static_cast<double>(src[i * stride]) - anchor) / delta_d);
    q = std::min(std::max(q, 0.0), static_cast<double>(levels));
    codes[i * stride] = static_cast<std::uint32_t>(q);
  }
  *scale = delta;
  *zero_point = static_cast<std::int64_t>(anchor_index);
}

/// The built-in linear uniform quantizer: Scheme x Granularity, spelled
/// "sym"/"asym" (+ per_channel) in specs.
class UniformQuantizer : public Quantizer {
 public:
  UniformQuantizer(Scheme scheme, bool per_channel)
      : scheme_(scheme), per_channel_(per_channel) {}

  Tensor quantize(const Tensor& w, int bits, QuantStats* stats) const override {
    HERO_CHECK_MSG(bits >= 1 && bits <= 16,
                   "quantization bits must be in [1, 16], got " << bits);
    HERO_CHECK_MSG(w.numel() > 0, "cannot quantize an empty tensor "
                                      << shape_to_string(w.shape()));
    Tensor out(w.shape());
    float max_delta = 0.0f;
    bool nonfinite = false;

    if (!per_channel_ || w.ndim() <= 1) {
      max_delta = quantize_run(w.data(), out.data(), w.numel(), 1, bits, scheme_, &nonfinite);
    } else {
      const std::int64_t axis = channel_axis(w);
      const std::int64_t channels = w.dim(axis);
      // Per-channel deltas land in per-channel slots, so chunks never share
      // state; the serial max below keeps the reduction deterministic.
      std::vector<float> deltas(static_cast<std::size_t>(channels), 0.0f);
      std::atomic<bool> bad{false};
      if (axis == 0) {
        // Channels are contiguous slabs.
        const std::int64_t slab = w.numel() / channels;
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, slab));
        runtime::parallel_for(0, channels, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool nf = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            deltas[static_cast<std::size_t>(c)] =
                quantize_run(w.data() + c * slab, out.data() + c * slab, slab, 1, bits,
                             scheme_, &nf);
          }
          if (nf) bad.store(true, std::memory_order_relaxed);
        });
      } else {
        // Linear [in, out]: each output column is a strided run (stride =
        // cols) quantized in place — no per-column gather/scatter buffers.
        const std::int64_t rows = w.dim(0);
        const std::int64_t cols = w.dim(1);
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, rows));
        runtime::parallel_for(0, cols, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool nf = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            deltas[static_cast<std::size_t>(c)] =
                quantize_run(w.data() + c, out.data() + c, rows, cols, bits, scheme_, &nf);
          }
          if (nf) bad.store(true, std::memory_order_relaxed);
        });
      }
      nonfinite = bad.load(std::memory_order_relaxed);
      if (!nonfinite) max_delta = *std::max_element(deltas.begin(), deltas.end());
    }
    HERO_CHECK_MSG(!nonfinite,
                   "quantization input " << shape_to_string(w.shape())
                                         << " contains a non-finite value (NaN/Inf); the "
                                            "grid range would be poisoned");

    if (stats != nullptr) {
      stats->max_bin_width = max_delta;
      stats->max_abs_error = max_abs_diff(out, w);
      double mse = 0.0;
      for (std::int64_t i = 0; i < w.numel(); ++i) {
        const double d = static_cast<double>(out.data()[i]) - w.data()[i];
        mse += d * d;
      }
      stats->mse = static_cast<float>(mse / static_cast<double>(w.numel()));
    }
    return out;
  }

  QuantizedTensor encode(const Tensor& w, int bits) const override {
    HERO_CHECK_MSG(bits >= 1 && bits <= 16,
                   "quantization bits must be in [1, 16], got " << bits);
    HERO_CHECK_MSG(w.numel() > 0, "cannot integer-encode an empty tensor "
                                      << shape_to_string(w.shape()));
    QuantizedTensor out;
    out.scheme = scheme_;
    out.shape = w.shape();
    out.bits = bits;
    // The symmetric 1-bit grid {-max|w|, 0, +max|w|} has three points.
    out.code_bits = (scheme_ == Scheme::kSymmetric && bits == 1) ? 2 : bits;
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(w.numel()));
    bool bad = false;

    if (!per_channel_ || w.ndim() <= 1) {
      out.axis = -1;
      out.scales.resize(1);
      out.zero_points.resize(1);
      encode_run(w.data(), codes.data(), w.numel(), 1, bits, scheme_, &out.scales[0],
                 &out.zero_points[0], &bad);
    } else {
      const std::int64_t axis = channel_axis(w);
      const std::int64_t channels = w.dim(axis);
      out.axis = axis;
      out.scales.resize(static_cast<std::size_t>(channels));
      out.zero_points.resize(static_cast<std::size_t>(channels));
      std::atomic<bool> bad_any{false};
      if (axis == 0) {
        const std::int64_t slab = w.numel() / channels;
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, slab));
        runtime::parallel_for(0, channels, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool b = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            encode_run(w.data() + c * slab, codes.data() + c * slab, slab, 1, bits, scheme_,
                       &out.scales[static_cast<std::size_t>(c)],
                       &out.zero_points[static_cast<std::size_t>(c)], &b);
          }
          if (b) bad_any.store(true, std::memory_order_relaxed);
        });
      } else {
        const std::int64_t rows = w.dim(0);
        const std::int64_t cols = w.dim(1);
        const std::int64_t grain =
            std::max<std::int64_t>(1, kChannelGrainElems / std::max<std::int64_t>(1, rows));
        runtime::parallel_for(0, cols, grain, [&](std::int64_t c0, std::int64_t c1) {
          bool b = false;
          for (std::int64_t c = c0; c < c1; ++c) {
            encode_run(w.data() + c, codes.data() + c, rows, cols, bits, scheme_,
                       &out.scales[static_cast<std::size_t>(c)],
                       &out.zero_points[static_cast<std::size_t>(c)], &b);
          }
          if (b) bad_any.store(true, std::memory_order_relaxed);
        });
      }
      bad = bad_any.load(std::memory_order_relaxed);
    }
    HERO_CHECK_MSG(!bad, "cannot integer-encode " << shape_to_string(w.shape())
                                                  << ": input contains a non-finite value or "
                                                     "a grid offset beyond int64 range");
    out.packed = pack_codes(codes, out.code_bits);
    return out;
  }

  std::string describe() const override {
    std::string name = scheme_ == Scheme::kSymmetric ? "sym" : "asym";
    return name + (per_channel_ ? "/per-channel" : "/per-tensor");
  }

 private:
  Scheme scheme_;
  bool per_channel_;
};

HERO_REGISTER_QUANTIZER(
    "sym",
    [](const SpecConfig& config) -> std::shared_ptr<Quantizer> {
      return std::make_shared<UniformQuantizer>(Scheme::kSymmetric,
                                                spec_bool(config, "per_channel", false, "quantizer"));
    },
    std::vector<std::string>{"per_channel"}, std::vector<std::string>{"symmetric"})

HERO_REGISTER_QUANTIZER(
    "asym",
    [](const SpecConfig& config) -> std::shared_ptr<Quantizer> {
      return std::make_shared<UniformQuantizer>(Scheme::kAsymmetric,
                                                spec_bool(config, "per_channel", false, "quantizer"));
    },
    std::vector<std::string>{"per_channel"}, std::vector<std::string>{"asymmetric"})

}  // namespace

QuantizedTensor Quantizer::encode(const Tensor& /*w*/, int /*bits*/) const {
  throw Error("quantizer '" + describe() +
              "' does not support integer encoding; it cannot be exported into a "
              "deployment artifact");
}

QuantizerRegistry& QuantizerRegistry::instance() {
  static QuantizerRegistry registry;
  return registry;
}

void QuantizerRegistry::add(const std::string& name, Factory factory,
                            const std::vector<std::string>& accepted_keys,
                            const std::vector<std::string>& aliases) {
  HERO_CHECK_MSG(!name.empty(), "cannot register a quantizer with an empty name");
  HERO_CHECK_MSG(entries_.find(name) == entries_.end(),
                 "quantizer '" << name << "' registered twice");
  entries_[name] = Entry{factory, accepted_keys, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    HERO_CHECK_MSG(entries_.find(alias) == entries_.end(),
                   "quantizer alias '" << alias << "' registered twice");
    entries_[alias] = Entry{factory, accepted_keys, /*is_alias=*/true};
  }
}

std::shared_ptr<Quantizer> QuantizerRegistry::create(const std::string& name,
                                                     const SpecConfig& config) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown quantizer '" + name + "' (registered: " + join_names(names()) + ")");
  }
  check_known_spec_keys(config, it->second.accepted_keys, "quantizer '" + name + "'");
  return it->second.factory(config);
}

bool QuantizerRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

bool QuantizerRegistry::accepts_key(const std::string& name, const std::string& key) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  const auto& keys = it->second.accepted_keys;
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

std::vector<std::string> QuantizerRegistry::accepted_keys(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown quantizer '" + name + "' (registered: " + join_names(names()) + ")");
  }
  return it->second.accepted_keys;
}

std::vector<std::string> QuantizerRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

QuantizerRegistration::QuantizerRegistration(const std::string& name,
                                             QuantizerRegistry::Factory factory,
                                             const std::vector<std::string>& accepted_keys,
                                             const std::vector<std::string>& aliases) {
  QuantizerRegistry::instance().add(name, std::move(factory), accepted_keys, aliases);
}

LayerQuantSpec parse_layer_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec, "quantizer", /*allow_bare_keys=*/true);
  LayerQuantSpec out;
  out.bits = spec_int(parsed.config, "bits", 8, "quantizer");
  HERO_CHECK_MSG(out.bits >= 1 && out.bits <= 16,
                 "quantizer spec bits must be in [1, 16], got " << out.bits << " in '" << spec
                                                                << "'");
  // "bits" belongs to the LayerQuantSpec, not the quantizer: erase it so
  // factories only declare (and see) their own keys.
  parsed.config.erase("bits");
  out.quantizer = QuantizerRegistry::instance().create(parsed.name, parsed.config);
  return out;
}

std::string with_bits(const std::string& quantizer_spec, int bits) {
  const char sep = quantizer_spec.find(':') == std::string::npos ? ':' : ',';
  return quantizer_spec + sep + "bits=" + std::to_string(bits);
}

double QuantPlan::average_bits() const {
  if (layers.empty()) return 0.0;
  double weighted = 0.0;
  double total = 0.0;
  for (const LayerQuantSpec& layer : layers) {
    const double w = layer.numel > 0 ? static_cast<double>(layer.numel) : 1.0;
    weighted += w * layer.bits;
    total += w;
  }
  return weighted / total;
}

std::string QuantPlan::describe() const {
  std::ostringstream os;
  for (const LayerQuantSpec& layer : layers) {
    os << (layer.layer.empty() ? "?" : layer.layer) << "  " << layer.bits << "-bit "
       << (layer.quantizer ? layer.quantizer->describe() : "?");
    if (layer.numel > 0) os << "  (" << layer.numel << " weights";
    if (layer.sensitivity > 0.0) os << ", sensitivity " << layer.sensitivity;
    if (layer.numel > 0) os << ")";
    os << "\n";
  }
  return os.str();
}

QuantPlan uniform_plan(nn::Module& model, const LayerQuantSpec& layer) {
  HERO_CHECK_MSG(layer.quantizer != nullptr, "uniform_plan needs a quantizer");
  QuantPlan plan;
  std::size_t i = 0;
  for (nn::Parameter* p : model.weight_parameters()) {
    LayerQuantSpec slot = layer;
    slot.layer = "w" + std::to_string(i++) + " " + shape_to_string(p->var.value().shape());
    slot.numel = p->var.value().numel();
    plan.layers.push_back(std::move(slot));
  }
  return plan;
}

std::shared_ptr<Quantizer> make_uniform_quantizer(Scheme scheme, Granularity granularity) {
  return std::make_shared<UniformQuantizer>(scheme,
                                            granularity == Granularity::kPerChannel);
}

}  // namespace hero::quant
