// Quantization API v2: pluggable quantizers and per-layer plans.
//
// A Quantizer is a polymorphic fake-quantization rule: quantize(w, bits)
// rounds `w` onto a `bits`-bit grid and dequantizes back to float — exactly
// the deployed-weight value. Implementations self-register with the
// QuantizerRegistry (name + factory + accepted config keys, mirroring
// optim/registry.hpp), so a spec string builds any of them:
//
//   LayerQuantSpec q = parse_layer_spec("sym:bits=4,per_channel");
//   Tensor deployed = q.quantizer->quantize(w, q.bits);
//
// Built-ins: "sym" — the zero-preserving signed grid Δ = max|w|/(2^(b-1)−1)
// (HAWQ convention); "asym" — an affine grid over [min(w), max(w)] with its
// zero-point nudged to the nearest grid index, so 0.0 stays exactly
// representable whenever min(w) ≤ 0 ≤ max(w). Both support per-channel
// granularity (conv dim 0 / linear dim 1); per-channel runs are partitioned
// over hero::runtime::parallel_for with thread-count-independent channel
// chunks, so results are bit-identical at any --threads=N.
//
// For deployment, quantizers also expose encode(): the same grid as
// quantize(), but returned as raw integer codes + scale/zero-point metadata
// (quant/encoding.hpp) ready for bit-packing into an HPKG artifact
// (src/deploy). decode(encode(w, b)) is bit-identical to quantize(w, b).
//
// A QuantPlan lifts single-tensor quantizers to whole models: one
// LayerQuantSpec (quantizer + bits) per is_weight parameter, in
// Module::weight_parameters() order. Plans come from the planners in
// quant/planner.hpp ("uniform:<spec>", "hawq:budget=<avg_bits>") and are
// applied by quantize_module_weights / ScopedWeightQuantization
// (quant/quantize.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/spec.hpp"
#include "nn/module.hpp"
#include "quant/encoding.hpp"
#include "tensor/tensor.hpp"

namespace hero::quant {

/// Error statistics of one quantization round trip.
struct QuantStats {
  float max_abs_error = 0.0f;  ///< ‖W_q − W‖∞ (must be ≤ max bin_width / 2)
  float mse = 0.0f;
  float max_bin_width = 0.0f;  ///< largest Δ across channels
};

/// A fake-quantization rule. Implementations are stateless and shareable
/// across the layers of a plan.
class Quantizer {
 public:
  virtual ~Quantizer() = default;

  /// Quantizes `w` to `bits` bits and dequantizes back to float (the
  /// deployed-weight value). Throws hero::Error on bits outside [1, 16] or
  /// non-finite inputs; fills `stats` (if non-null) with round-trip error.
  virtual Tensor quantize(const Tensor& w, int bits, QuantStats* stats = nullptr) const = 0;

  /// Integer-encodes `w` for deployment: raw codes + per-group scale and
  /// zero-point (quant/encoding.hpp), with decode(encode(w, bits))
  /// bit-identical to quantize(w, bits). The default implementation throws
  /// hero::Error — a quantizer without an integer form (e.g. a future
  /// codebook rule) still works for fake-quant sweeps but cannot be exported
  /// into a deployment artifact.
  virtual QuantizedTensor encode(const Tensor& w, int bits) const;

  /// Short label for reports, e.g. "sym/per-channel".
  virtual std::string describe() const = 0;
};

/// Self-registering quantizer factories, keyed by spec name ("sym", "asym").
class QuantizerRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Quantizer>(const SpecConfig&)>;

  /// The process-wide registry the HERO_REGISTER_QUANTIZER initializers fill.
  static QuantizerRegistry& instance();

  /// Registers a factory under `name` with the config keys it accepts, plus
  /// optional aliases. Throws on duplicate names. create() rejects keys
  /// outside `accepted_keys` before invoking the factory.
  void add(const std::string& name, Factory factory,
           const std::vector<std::string>& accepted_keys = {},
           const std::vector<std::string>& aliases = {});

  /// Builds a quantizer by (possibly aliased) name. Throws hero::Error
  /// listing the registered names when `name` is unknown, or the accepted
  /// keys when `config` contains one the quantizer does not take.
  std::shared_ptr<Quantizer> create(const std::string& name,
                                    const SpecConfig& config = {}) const;

  bool contains(const std::string& name) const;
  bool accepts_key(const std::string& name, const std::string& key) const;

  /// The config keys the (possibly aliased) quantizer accepts — for
  /// listings and generic --help output. Throws on unknown names.
  std::vector<std::string> accepted_keys(const std::string& name) const;

  /// Canonical (non-alias) registered names, sorted.
  std::vector<std::string> names() const;

 private:
  QuantizerRegistry() = default;
  struct Entry {
    Factory factory;
    std::vector<std::string> accepted_keys;
    bool is_alias = false;
  };
  std::map<std::string, Entry> entries_;
};

/// Performs registration at static-initialization time; use through
/// HERO_REGISTER_QUANTIZER below.
struct QuantizerRegistration {
  QuantizerRegistration(const std::string& name, QuantizerRegistry::Factory factory,
                        const std::vector<std::string>& accepted_keys = {},
                        const std::vector<std::string>& aliases = {});
};

#define HERO_QUANTIZER_CONCAT_INNER(a, b) a##b
#define HERO_QUANTIZER_CONCAT(a, b) HERO_QUANTIZER_CONCAT_INNER(a, b)

/// Registers a quantizer from its implementation file:
///   HERO_REGISTER_QUANTIZER("sym", factory, {"per_channel"});
/// Arguments after the factory: the accepted config keys, then aliases.
/// "bits" is a framework key — parse_layer_spec peels it off before the
/// factory runs, so factories never declare or see it.
#define HERO_REGISTER_QUANTIZER(name, ...)                                \
  static const ::hero::quant::QuantizerRegistration HERO_QUANTIZER_CONCAT( \
      hero_quantizer_registration_, __LINE__){name, __VA_ARGS__};

/// One layer's slot in a QuantPlan: which quantizer, at how many bits.
/// `layer` / `numel` / `sensitivity` are bookkeeping filled in when the spec
/// is bound to a model (planners); parse_layer_spec leaves them empty.
struct LayerQuantSpec {
  std::shared_ptr<Quantizer> quantizer;
  int bits = 8;
  std::string layer;         ///< display label, e.g. "w3 [8, 16, 3, 3]"
  std::int64_t numel = 0;    ///< parameter element count
  double sensitivity = 0.0;  ///< per-layer Hessian sensitivity (hawq planner)
};

/// Parses "sym:bits=4,per_channel" / "asym:bits=8" into quantizer + bits.
/// "bits" (default 8) is peeled off into the LayerQuantSpec; every other
/// entry configures the quantizer (bare keys are boolean flags). Throws on
/// unknown quantizer names, unknown keys, and bits outside [1, 16].
LayerQuantSpec parse_layer_spec(const std::string& spec);

/// Appends a bit width to a bits-free quantizer spec:
/// ("sym", 4) → "sym:bits=4"; ("asym:per_channel", 3) → "asym:per_channel,bits=3".
std::string with_bits(const std::string& quantizer_spec, int bits);

/// Maps each weight parameter of a module (Module::weight_parameters()
/// order) to a LayerQuantSpec, enabling heterogeneous per-layer precision.
struct QuantPlan {
  std::vector<LayerQuantSpec> layers;

  /// numel-weighted mean bit width (the "average bits" a hawq budget is
  /// spent against); plain mean when numels are unset.
  double average_bits() const;

  /// One line per layer: label, size, bits, quantizer description.
  std::string describe() const;
};

/// Replicates one layer spec across every weight parameter of `model`
/// (today's homogeneous behavior, as a plan).
QuantPlan uniform_plan(nn::Module& model, const LayerQuantSpec& layer);

/// The built-in uniform quantizer by enum configuration — the legacy
/// QuantConfig path (quant/quantize.hpp) funnels through this, so enum- and
/// spec-built quantizers are the same object type, bit for bit.
std::shared_ptr<Quantizer> make_uniform_quantizer(Scheme scheme, Granularity granularity);

}  // namespace hero::quant
