// Integer weight encodings: the deployable form of a quantized tensor.
//
// Quantizer::quantize (quant/quantizer.hpp) is *fake* quantization — it
// rounds onto the low-bit grid but hands back float32, so nothing gets
// smaller. This header is the real thing: encode() (on the Quantizer)
// produces a QuantizedTensor holding raw integer codes plus the per-group
// scale/zero-point metadata needed to reconstruct the grid, and decode()
// maps it back to float32. The contract that makes artifacts trustworthy:
//
//   decode(quantizer.encode(w, bits)) is BIT-IDENTICAL to
//   quantizer.quantize(w, bits)
//
// for every scheme, granularity, and bit width — so evaluating a reloaded
// deployment artifact gives exactly the accuracy the fake-quant sweep
// promised (pinned by tests/deploy/encoding_test.cpp).
//
// Codes are stored bit-packed (pack_codes / unpack_codes): b-bit weights
// really cost b bits each, LSB-first in a little-endian bitstream. The only
// widening is symmetric 1-bit, whose grid {-max|w|, 0, +max|w|} has three
// points and therefore packs at code_bits = 2.
//
// Per-group layout (groups = quantization granularity):
//   per-tensor:            one group covering the flat tensor
//   per-channel, conv:     one group per dim-0 slab [out, in*k*k]
//   per-channel, linear:   one group per dim-1 column (stride = cols)
// Each group stores one float scale and one integer zero-point. Decoding is
// parallelized over groups on hero::runtime with shape-only chunk
// boundaries, so the output is bit-identical at any --threads=N.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hero::quant {

enum class Scheme {
  kSymmetric,   ///< signed grid over [-max|w|, +max|w|]; 0 is a grid point
  kAsymmetric,  ///< affine grid over [min(w), max(w)], zero-point nudged
};

enum class Granularity {
  kPerTensor,   ///< one scale for the whole tensor
  kPerChannel,  ///< one scale per output channel (conv dim 0 / linear dim 1)
};

/// Packs `codes` (each < 2^bits) at `bits` bits per value, LSB-first into a
/// little-endian byte stream of ceil(codes.size() * bits / 8) bytes. Throws
/// hero::Error on bits outside [1, 32] or a code that does not fit.
std::vector<std::uint8_t> pack_codes(const std::vector<std::uint32_t>& codes, int bits);

/// Inverse of pack_codes: extracts `count` bit-packed values. Throws
/// hero::Error when `packed` is smaller than ceil(count * bits / 8) bytes.
std::vector<std::uint32_t> unpack_codes(const std::vector<std::uint8_t>& packed, int bits,
                                        std::int64_t count);

/// A tensor in deployable integer form: bit-packed codes + per-group grid
/// metadata. Self-describing — decode() needs nothing but this struct.
struct QuantizedTensor {
  Scheme scheme = Scheme::kSymmetric;
  Shape shape;
  int bits = 8;       ///< nominal precision of the grid
  int code_bits = 8;  ///< storage bits per code (== bits except sym 1-bit → 2)
  /// Channel axis for per-channel grids (0 conv slabs / 1 linear columns);
  /// -1 means one per-tensor group.
  std::int64_t axis = -1;
  std::vector<float> scales;              ///< one grid step per group
  std::vector<std::int64_t> zero_points;  ///< one grid offset per group
  std::vector<std::uint8_t> packed;       ///< numel codes, code_bits each

  std::int64_t numel() const { return shape_numel(shape); }
  std::int64_t groups() const { return static_cast<std::int64_t>(scales.size()); }
  /// Serialized payload cost: packed codes + per-group metadata (the number
  /// compression ratios are computed from).
  std::size_t payload_bytes() const {
    return packed.size() + scales.size() * sizeof(float) +
           zero_points.size() * sizeof(std::int64_t);
  }
};

/// Reconstructs the float32 tensor a QuantizedTensor encodes — bit-identical
/// to the fake-quant Quantizer::quantize output the codes were derived from,
/// at any thread count. Throws hero::Error on inconsistent metadata
/// (group/axis/shape mismatch, short code payload).
Tensor decode(const QuantizedTensor& q);

}  // namespace hero::quant
