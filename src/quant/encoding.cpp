#include "quant/encoding.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace hero::quant {

namespace {

/// Target elements per parallel_for chunk when partitioning decode groups;
/// like the quantizer's, boundaries are a pure function of the tensor shape.
constexpr std::int64_t kDecodeGrainElems = 4096;

std::size_t packed_byte_count(std::int64_t count, int bits) {
  return static_cast<std::size_t>((count * bits + 7) / 8);
}

/// Reconstructs one strided run sharing a (scale, zero_point) group. The
/// arithmetic mirrors quantize_run (quant/quantizer.cpp) expression for
/// expression, which is what makes decode(encode(w)) bit-identical to
/// quantize(w):
///   symmetric:  out = (code - zp) * scale        (zp = half_levels)
///   asymmetric: out = (float)(zp * Δd + code * Δd) in double, Δd = (double)scale
///   constant:   zp = 0, scale = c, code = 1 → 1 * c == c under both formulas
void decode_run(const std::uint32_t* codes, float* dst, std::int64_t count,
                std::int64_t stride, Scheme scheme, float scale,
                std::int64_t zp) noexcept {
  if (scheme == Scheme::kSymmetric) {
    for (std::int64_t i = 0; i < count; ++i) {
      const float q =
          static_cast<float>(static_cast<std::int64_t>(codes[i * stride]) - zp);
      dst[i * stride] = q * scale;
    }
    return;
  }
  const double delta_d = static_cast<double>(scale);
  const double anchor = static_cast<double>(zp) * delta_d;
  for (std::int64_t i = 0; i < count; ++i) {
    const double q = static_cast<double>(codes[i * stride]);
    dst[i * stride] = static_cast<float>(anchor + q * delta_d);
  }
}

}  // namespace

std::vector<std::uint8_t> pack_codes(const std::vector<std::uint32_t>& codes, int bits) {
  HERO_CHECK_MSG(bits >= 1 && bits <= 32, "pack_codes bits must be in [1, 32], got " << bits);
  const std::uint64_t limit = 1ULL << bits;
  std::vector<std::uint8_t> out(packed_byte_count(static_cast<std::int64_t>(codes.size()), bits),
                                0);
  std::uint64_t acc = 0;  // pending bits, LSB-first
  int acc_bits = 0;
  std::size_t byte = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HERO_CHECK_MSG(static_cast<std::uint64_t>(codes[i]) < limit,
                   "pack_codes: code " << codes[i] << " at index " << i << " does not fit in "
                                       << bits << " bits");
    acc |= static_cast<std::uint64_t>(codes[i]) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out[byte++] = static_cast<std::uint8_t>(acc & 0xffu);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out[byte++] = static_cast<std::uint8_t>(acc & 0xffu);
  return out;
}

std::vector<std::uint32_t> unpack_codes(const std::vector<std::uint8_t>& packed, int bits,
                                        std::int64_t count) {
  HERO_CHECK_MSG(bits >= 1 && bits <= 32, "unpack_codes bits must be in [1, 32], got " << bits);
  HERO_CHECK_MSG(count >= 0, "unpack_codes count must be non-negative, got " << count);
  HERO_CHECK_MSG(packed.size() >= packed_byte_count(count, bits),
                 "unpack_codes: " << packed.size() << " packed bytes cannot hold " << count
                                  << " codes of " << bits << " bits");
  const std::uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  std::vector<std::uint32_t> out(static_cast<std::size_t>(count));
  std::uint64_t acc = 0;
  int acc_bits = 0;
  std::size_t byte = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    while (acc_bits < bits) {
      acc |= static_cast<std::uint64_t>(packed[byte++]) << acc_bits;
      acc_bits += 8;
    }
    out[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(acc & mask);
    acc >>= bits;
    acc_bits -= bits;
  }
  return out;
}

Tensor decode(const QuantizedTensor& q) {
  HERO_CHECK_MSG(q.bits >= 1 && q.bits <= 16,
                 "QuantizedTensor bits must be in [1, 16], got " << q.bits);
  HERO_CHECK_MSG(q.code_bits >= 1 && q.code_bits <= 32,
                 "QuantizedTensor code_bits must be in [1, 32], got " << q.code_bits);
  for (const std::int64_t d : q.shape) {
    HERO_CHECK_MSG(d >= 0, "QuantizedTensor has a negative extent " << d);
  }
  HERO_CHECK_MSG(q.scales.size() == q.zero_points.size(),
                 "QuantizedTensor group mismatch: " << q.scales.size() << " scales vs "
                                                    << q.zero_points.size() << " zero points");
  const std::int64_t numel = q.numel();
  const std::int64_t groups = q.groups();
  const std::vector<std::uint32_t> codes = unpack_codes(q.packed, q.code_bits, numel);

  Tensor out(q.shape);
  if (q.axis < 0) {
    HERO_CHECK_MSG(groups == 1, "per-tensor QuantizedTensor must have exactly one group, got "
                                    << groups);
    decode_run(codes.data(), out.data(), numel, 1, q.scheme, q.scales[0], q.zero_points[0]);
    return out;
  }

  HERO_CHECK_MSG(q.axis == 0 || q.axis == 1,
                 "QuantizedTensor channel axis must be 0 or 1, got " << q.axis);
  HERO_CHECK_MSG(q.axis < static_cast<std::int64_t>(q.shape.size()),
                 "QuantizedTensor channel axis " << q.axis << " out of range for shape "
                                                 << shape_to_string(q.shape));
  const std::int64_t channels = q.shape[static_cast<std::size_t>(q.axis)];
  HERO_CHECK_MSG(groups == channels, "QuantizedTensor has " << groups << " groups but axis "
                                                            << q.axis << " holds " << channels
                                                            << " channels");
  if (q.axis == 0) {
    // Channels are contiguous slabs.
    const std::int64_t slab = channels == 0 ? 0 : numel / channels;
    const std::int64_t grain =
        std::max<std::int64_t>(1, kDecodeGrainElems / std::max<std::int64_t>(1, slab));
    runtime::parallel_for(0, channels, grain, [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t c = c0; c < c1; ++c) {
        decode_run(codes.data() + c * slab, out.data() + c * slab, slab, 1, q.scheme,
                   q.scales[static_cast<std::size_t>(c)],
                   q.zero_points[static_cast<std::size_t>(c)]);
      }
    });
  } else {
    // Linear [in, out]: each output column is a strided run (stride = cols).
    HERO_CHECK_MSG(q.shape.size() == 2, "axis-1 QuantizedTensor must be 2-D, got shape "
                                            << shape_to_string(q.shape));
    const std::int64_t rows = q.shape[0];
    const std::int64_t cols = q.shape[1];
    const std::int64_t grain =
        std::max<std::int64_t>(1, kDecodeGrainElems / std::max<std::int64_t>(1, rows));
    runtime::parallel_for(0, cols, grain, [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t c = c0; c < c1; ++c) {
        decode_run(codes.data() + c, out.data() + c, rows, cols, q.scheme,
                   q.scales[static_cast<std::size_t>(c)],
                   q.zero_points[static_cast<std::size_t>(c)]);
      }
    });
  }
  return out;
}

}  // namespace hero::quant
