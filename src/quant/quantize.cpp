#include "quant/quantize.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hero::quant {

namespace {

/// Quantizes a contiguous run of `count` floats sharing one scale.
/// Returns the bin width used.
float quantize_run(const float* src, float* dst, std::int64_t count, int bits, Scheme scheme) {
  float lo = src[0];
  float hi = src[0];
  for (std::int64_t i = 1; i < count; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  if (lo == hi) {
    // Constant tensor: representable exactly under either scheme.
    for (std::int64_t i = 0; i < count; ++i) dst[i] = src[i];
    return 0.0f;
  }
  if (scheme == Scheme::kSymmetric) {
    // Zero-preserving signed grid (the standard symmetric convention, as in
    // HAWQ and the paper's W4/W8 setup): delta = max|w| / (2^(bits-1) - 1),
    // q = round(w / delta) clamped to ±(2^(bits-1) - 1). Zero is exactly
    // representable and the grid is odd-symmetric: Q(-w) == -Q(w).
    const float max_abs = std::max(std::fabs(lo), std::fabs(hi));
    const auto half_levels = static_cast<float>((1LL << (bits - 1)) - 1);
    if (half_levels == 0.0f) {
      // bits == 1 degenerates to a sign quantizer onto {-max|w|, 0, +max|w|}.
      for (std::int64_t i = 0; i < count; ++i) {
        dst[i] = src[i] > 0.0f ? max_abs : (src[i] < 0.0f ? -max_abs : 0.0f);
      }
      return 2.0f * max_abs;
    }
    const float delta = max_abs / half_levels;
    for (std::int64_t i = 0; i < count; ++i) {
      float q = std::round(src[i] / delta);
      q = std::min(std::max(q, -half_levels), half_levels);  // clamp to ±max|w|
      dst[i] = q * delta;
    }
    return delta;
  }
  const auto levels = static_cast<float>((1LL << bits) - 1);  // 2^n - 1 steps
  const float delta = (hi - lo) / levels;
  for (std::int64_t i = 0; i < count; ++i) {
    const float q = std::round((src[i] - lo) / delta);
    dst[i] = lo + q * delta;
  }
  return delta;
}

/// Output-channel axis for per-channel quantization: conv weights
/// [out, in, k, k] use dim 0; linear weights [in, out] use dim 1.
std::int64_t channel_axis(const Tensor& w) { return w.ndim() == 2 ? 1 : 0; }

}  // namespace

Tensor quantize_dequantize(const Tensor& w, const QuantConfig& config, QuantStats* stats) {
  HERO_CHECK_MSG(config.bits >= 1 && config.bits <= 16,
                 "quantization bits must be in [1, 16], got " << config.bits);
  Tensor out(w.shape());
  float max_delta = 0.0f;

  if (config.granularity == Granularity::kPerTensor || w.ndim() <= 1) {
    max_delta = quantize_run(w.data(), out.data(), w.numel(), config.bits, config.scheme);
  } else {
    const std::int64_t axis = channel_axis(w);
    if (axis == 0) {
      // Channels are contiguous slabs.
      const std::int64_t channels = w.dim(0);
      const std::int64_t slab = w.numel() / channels;
      for (std::int64_t c = 0; c < channels; ++c) {
        const float delta = quantize_run(w.data() + c * slab, out.data() + c * slab, slab,
                                         config.bits, config.scheme);
        max_delta = std::max(max_delta, delta);
      }
    } else {
      // Linear [in, out]: gather each output column, quantize, scatter back.
      const std::int64_t rows = w.dim(0);
      const std::int64_t cols = w.dim(1);
      std::vector<float> column(static_cast<std::size_t>(rows));
      std::vector<float> qcolumn(static_cast<std::size_t>(rows));
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t r = 0; r < rows; ++r) column[static_cast<std::size_t>(r)] =
            w.data()[r * cols + c];
        const float delta = quantize_run(column.data(), qcolumn.data(), rows, config.bits,
                                         config.scheme);
        max_delta = std::max(max_delta, delta);
        for (std::int64_t r = 0; r < rows; ++r) out.data()[r * cols + c] =
            qcolumn[static_cast<std::size_t>(r)];
      }
    }
  }

  if (stats != nullptr) {
    stats->max_bin_width = max_delta;
    stats->max_abs_error = max_abs_diff(out, w);
    double mse = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = static_cast<double>(out.data()[i]) - w.data()[i];
      mse += d * d;
    }
    stats->mse = static_cast<float>(mse / static_cast<double>(w.numel()));
  }
  return out;
}

WeightSnapshot snapshot_weights(nn::Module& model) {
  WeightSnapshot snapshot;
  for (nn::Parameter* p : model.weight_parameters()) {
    snapshot.push_back(p->var.value().clone());
  }
  return snapshot;
}

void restore_weights(nn::Module& model, const WeightSnapshot& snapshot) {
  const auto params = model.weight_parameters();
  HERO_CHECK_MSG(params.size() == snapshot.size(), "snapshot does not match model");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->var.mutable_value().copy_(snapshot[i]);
  }
}

QuantStats quantize_module_weights(nn::Module& model, const QuantConfig& config) {
  QuantStats aggregate;
  double mse_sum = 0.0;
  std::size_t count = 0;
  for (nn::Parameter* p : model.weight_parameters()) {
    QuantStats stats;
    const Tensor q = quantize_dequantize(p->var.value(), config, &stats);
    p->var.mutable_value().copy_(q);
    aggregate.max_abs_error = std::max(aggregate.max_abs_error, stats.max_abs_error);
    aggregate.max_bin_width = std::max(aggregate.max_bin_width, stats.max_bin_width);
    mse_sum += stats.mse;
    ++count;
  }
  if (count > 0) aggregate.mse = static_cast<float>(mse_sum / static_cast<double>(count));
  return aggregate;
}

ScopedWeightQuantization::ScopedWeightQuantization(nn::Module& model, const QuantConfig& config)
    : model_(model), snapshot_(snapshot_weights(model)) {
  stats_ = quantize_module_weights(model, config);
}

ScopedWeightQuantization::~ScopedWeightQuantization() { restore_weights(model_, snapshot_); }

}  // namespace hero::quant
