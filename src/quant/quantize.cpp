#include "quant/quantize.hpp"

#include "common/check.hpp"

namespace hero::quant {

QuantPlan uniform_plan(nn::Module& model, const QuantConfig& config) {
  LayerQuantSpec layer;
  layer.quantizer = make_uniform_quantizer(config.scheme, config.granularity);
  layer.bits = config.bits;
  return uniform_plan(model, layer);
}

Tensor quantize_dequantize(const Tensor& w, const QuantConfig& config, QuantStats* stats) {
  return make_uniform_quantizer(config.scheme, config.granularity)
      ->quantize(w, config.bits, stats);
}

WeightSnapshot snapshot_weights(nn::Module& model) {
  WeightSnapshot snapshot;
  for (nn::Parameter* p : model.weight_parameters()) {
    snapshot.push_back(p->var.value().clone());
  }
  return snapshot;
}

void restore_weights(nn::Module& model, const WeightSnapshot& snapshot) {
  const auto params = model.weight_parameters();
  HERO_CHECK_MSG(params.size() == snapshot.size(), "snapshot does not match model");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->var.mutable_value().copy_(snapshot[i]);
  }
}

QuantStats quantize_module_weights(nn::Module& model, const QuantPlan& plan) {
  const auto params = model.weight_parameters();
  HERO_CHECK_MSG(plan.layers.size() == params.size(),
                 "quantization plan has " << plan.layers.size() << " layers but the model has "
                                          << params.size() << " weight parameters");
  QuantStats aggregate;
  double mse_sum = 0.0;
  double numel_sum = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const LayerQuantSpec& layer = plan.layers[i];
    HERO_CHECK_MSG(layer.quantizer != nullptr,
                   "quantization plan layer " << i << " has no quantizer");
    QuantStats stats;
    const Tensor& w = params[i]->var.value();
    const Tensor q = layer.quantizer->quantize(w, layer.bits, &stats);
    params[i]->var.mutable_value().copy_(q);
    aggregate.max_abs_error = std::max(aggregate.max_abs_error, stats.max_abs_error);
    aggregate.max_bin_width = std::max(aggregate.max_bin_width, stats.max_bin_width);
    // Weight per-tensor MSEs by element count so the aggregate is the true
    // model-wide mean squared error, not a mean of per-tensor means.
    const auto numel = static_cast<double>(w.numel());
    mse_sum += static_cast<double>(stats.mse) * numel;
    numel_sum += numel;
  }
  if (numel_sum > 0.0) aggregate.mse = static_cast<float>(mse_sum / numel_sum);
  return aggregate;
}

QuantStats quantize_module_weights(nn::Module& model, const QuantConfig& config) {
  return quantize_module_weights(model, uniform_plan(model, config));
}

ScopedWeightQuantization::ScopedWeightQuantization(nn::Module& model, const QuantPlan& plan)
    : model_(model), snapshot_(snapshot_weights(model)) {
  stats_ = quantize_module_weights(model, plan);
}

ScopedWeightQuantization::ScopedWeightQuantization(nn::Module& model, const QuantConfig& config)
    : ScopedWeightQuantization(model, uniform_plan(model, config)) {}

ScopedWeightQuantization::ScopedWeightQuantization(nn::Module& model,
                                                   const std::string& layer_spec)
    : ScopedWeightQuantization(model, uniform_plan(model, parse_layer_spec(layer_spec))) {}

ScopedWeightQuantization::~ScopedWeightQuantization() { restore_weights(model_, snapshot_); }

}  // namespace hero::quant
