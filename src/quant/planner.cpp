#include "quant/planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "data/loader.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"
#include "optim/methods.hpp"

namespace hero::quant {

namespace {

/// Fills the per-layer bookkeeping (label, numel) for slot `i` of a plan.
void bind_layer(LayerQuantSpec& slot, std::size_t i, const Tensor& w) {
  slot.layer = "w" + std::to_string(i) + " " + shape_to_string(w.shape());
  slot.numel = w.numel();
}

QuantPlan uniform_planner(nn::Module& model, const std::string& args,
                          const PlannerContext& /*ctx*/) {
  HERO_CHECK_MSG(!args.empty(),
                 "uniform planner needs a quantizer spec after the colon, e.g. "
                 "'uniform:sym:bits=4'");
  return uniform_plan(model, parse_layer_spec(args));
}

/// Per-layer Hessian sensitivities of the is_weight parameters, measured on
/// a calibration batch with frozen BatchNorm statistics (mirrors
/// core::measure_hessian_norm so planning never perturbs running stats).
std::vector<double> weight_sensitivities(nn::Module& model, const PlannerContext& ctx,
                                         hessian::BlockMetric metric, int iters) {
  HERO_CHECK_MSG(ctx.calib != nullptr,
                 "hawq planner needs calibration data: set PlannerContext::calib to (a "
                 "sample of) the training set");
  const std::int64_t count = std::min<std::int64_t>(ctx.sample, ctx.calib->size());
  HERO_CHECK_MSG(count > 0, "hawq calibration dataset is empty");
  const data::Dataset part = ctx.calib->slice(0, count);
  data::Batch batch{part.features, part.labels};

  hessian::Params blocks;
  for (nn::Parameter* p : model.weight_parameters()) blocks.push_back(p->var);

  const bool was_training = model.training();
  model.set_training(true);
  std::vector<double> sensitivities;
  {
    nn::BatchNormFreezeGuard bn_freeze;
    auto closure = [&model, &batch]() { return optim::batch_loss(model, batch); };
    Rng rng(ctx.seed);
    sensitivities = hessian::block_sensitivities(closure, blocks, metric, rng, iters);
  }
  model.set_training(was_training);
  return sensitivities;
}

QuantPlan hawq_planner(nn::Module& model, const std::string& args, const PlannerContext& ctx) {
  // The args are a plain key=value list; parse them through the shared spec
  // grammar by re-attaching the planner name.
  const SpecConfig config = parse_spec("hawq:" + args, "planner", /*allow_bare_keys=*/true).config;
  check_known_spec_keys(
      config, {"budget", "scheme", "per_channel", "metric", "min_bits", "max_bits", "iters"},
      "planner 'hawq'");
  HERO_CHECK_MSG(config.find("budget") != config.end(),
                 "hawq planner needs a bit budget, e.g. 'hawq:budget=5'");
  const float budget = spec_float(config, "budget", 0.0f, "planner");
  const int min_bits = spec_int(config, "min_bits", 2, "planner");
  const int max_bits = spec_int(config, "max_bits", 8, "planner");
  const int iters = spec_int(config, "iters", 12, "planner");
  HERO_CHECK_MSG(min_bits >= 1 && max_bits <= 16 && min_bits <= max_bits,
                 "hawq bit range must satisfy 1 <= min_bits <= max_bits <= 16, got ["
                     << min_bits << ", " << max_bits << "]");
  HERO_CHECK_MSG(budget >= static_cast<float>(min_bits) &&
                     budget <= static_cast<float>(max_bits),
                 "hawq budget " << budget << " outside the allocatable range [" << min_bits
                                << ", " << max_bits << "]");
  const std::string metric_name = spec_str(config, "metric", "lmax");
  HERO_CHECK_MSG(metric_name == "lmax" || metric_name == "trace",
                 "hawq metric must be 'lmax' or 'trace', got '" << metric_name << "'");
  const hessian::BlockMetric metric = metric_name == "lmax"
                                          ? hessian::BlockMetric::kLambdaMax
                                          : hessian::BlockMetric::kTrace;
  SpecConfig quantizer_config;
  if (spec_bool(config, "per_channel", false, "planner")) quantizer_config["per_channel"] = "1";
  const auto quantizer =
      QuantizerRegistry::instance().create(spec_str(config, "scheme", "sym"), quantizer_config);

  const std::vector<double> sensitivities = weight_sensitivities(model, ctx, metric, iters);
  const auto params = model.weight_parameters();

  QuantPlan plan;
  std::int64_t total_numel = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& w = params[i]->var.value();
    LayerQuantSpec slot;
    slot.quantizer = quantizer;
    slot.bits = min_bits;
    slot.sensitivity = sensitivities[i];
    bind_layer(slot, i, w);
    plan.layers.push_back(std::move(slot));
    total_numel += w.numel();
  }
  if (plan.layers.empty()) return plan;

  // Greedy bit allocation on the HAWQ(-v2) objective: the second-order loss
  // increase of quantizing layer i at b bits is ~ λ_i · ‖Q_b(W_i) − W_i‖².
  // The error term is *measured* (one cheap quantize per layer per
  // candidate precision), not modeled analytically, so heavy-tailed layers
  // whose error shrinks slower than the ideal 4^(−b) keep their bits. Each
  // +1-bit step costs numel_i of the budget and buys
  // λ_i · (err_i(b) − err_i(b+1)); the greedy picks the best buy per bit.
  const int span = max_bits - min_bits + 1;
  std::vector<std::vector<double>> err(plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    const Tensor& w = params[i]->var.value();
    err[i].resize(static_cast<std::size_t>(span));
    for (int b = min_bits; b <= max_bits; ++b) {
      QuantStats stats;
      quantizer->quantize(w, b, &stats);
      err[i][static_cast<std::size_t>(b - min_bits)] =
          static_cast<double>(stats.mse) * static_cast<double>(w.numel());
    }
  }
  auto marginal_gain = [&](std::size_t i) {
    const int b = plan.layers[i].bits;
    const double drop = err[i][static_cast<std::size_t>(b - min_bits)] -
                        err[i][static_cast<std::size_t>(b + 1 - min_bits)];
    // Floor the sensitivity so flat layers still rank (by error drop alone)
    // instead of tying at exactly zero, and clamp pathological negative
    // drops (possible for near-constant layers) to zero.
    return std::max(sensitivities[i], 1e-12) * std::max(drop, 0.0) /
           static_cast<double>(plan.layers[i].numel);
  };

  const auto budget_bits =
      static_cast<std::int64_t>(std::llround(static_cast<double>(budget) * total_numel));
  std::int64_t used = static_cast<std::int64_t>(min_bits) * total_numel;
  while (true) {
    std::size_t best = plan.layers.size();
    double best_score = 0.0;
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
      if (plan.layers[i].bits >= max_bits) continue;
      if (used + plan.layers[i].numel > budget_bits) continue;
      const double score = marginal_gain(i);
      if (best == plan.layers.size() || score > best_score) {  // ties: lowest index
        best = i;
        best_score = score;
      }
    }
    if (best == plan.layers.size()) break;
    plan.layers[best].bits += 1;
    used += plan.layers[best].numel;
  }
  return plan;
}

HERO_REGISTER_QUANT_PLANNER("uniform", uniform_planner)
HERO_REGISTER_QUANT_PLANNER("hawq", hawq_planner, std::vector<std::string>{"hessian"})

}  // namespace

PlannerRegistry& PlannerRegistry::instance() {
  static PlannerRegistry registry;
  return registry;
}

void PlannerRegistry::add(const std::string& name, Factory factory,
                          const std::vector<std::string>& aliases) {
  HERO_CHECK_MSG(!name.empty(), "cannot register a quantization planner with an empty name");
  HERO_CHECK_MSG(entries_.find(name) == entries_.end(),
                 "quantization planner '" << name << "' registered twice");
  entries_[name] = Entry{factory, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    HERO_CHECK_MSG(entries_.find(alias) == entries_.end(),
                   "quantization-planner alias '" << alias << "' registered twice");
    entries_[alias] = Entry{factory, /*is_alias=*/true};
  }
}

QuantPlan PlannerRegistry::create(const std::string& name, const std::string& args,
                                  nn::Module& model, const PlannerContext& ctx) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown quantization planner '" + name + "' (registered: " +
                join_names(names()) + ")");
  }
  return it->second.factory(model, args, ctx);
}

bool PlannerRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> PlannerRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

PlannerRegistration::PlannerRegistration(const std::string& name,
                                         PlannerRegistry::Factory factory,
                                         const std::vector<std::string>& aliases) {
  PlannerRegistry::instance().add(name, std::move(factory), aliases);
}

QuantPlan plan_quantization(nn::Module& model, const std::string& planner_spec,
                            const PlannerContext& ctx) {
  HERO_CHECK_MSG(!planner_spec.empty(), "empty quantization-planner spec");
  const auto colon = planner_spec.find(':');
  const std::string name = planner_spec.substr(0, colon);
  HERO_CHECK_MSG(!name.empty(), "quantization-planner spec has no name: '" << planner_spec
                                                                            << "'");
  const std::string args = colon == std::string::npos ? "" : planner_spec.substr(colon + 1);
  return PlannerRegistry::instance().create(name, args, model, ctx);
}

}  // namespace hero::quant
