// Quantization planners: spec string → QuantPlan.
//
// A planner decides which quantizer and how many bits each weight layer
// gets. Planners self-register with the PlannerRegistry (same pattern as the
// quantizer and training-method registries) and are addressed by spec
// string, "name:<args>" — the args grammar is planner-specific because
// uniform nests a whole quantizer spec after the colon:
//
//   uniform:sym:bits=4,per_channel   every layer gets that quantizer/bits
//                                    (reproduces the v1 QuantConfig behavior
//                                    bit for bit — pinned by a parity test)
//   hawq:budget=5                    Hessian-aware mixed precision: layers
//                                    are ranked by per-layer Hessian
//                                    sensitivity (HAWQ, Dong et al. 2019;
//                                    hessian/spectral.hpp block_sensitivities)
//                                    and a greedy allocator spends an
//                                    average-bits budget where curvature
//                                    says precision matters most
//
// hawq accepts: budget (required, average bits per weight), scheme
// (sym|asym, default sym), per_channel (flag), metric (lmax|trace, default
// lmax), min_bits (2), max_bits (8), iters (12). It needs calibration data:
// pass a PlannerContext with `calib` pointing at (a sample of) the training
// set — sensitivities are measured there, never on the test set.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"
#include "quant/quantizer.hpp"

namespace hero::quant {

/// Inputs Hessian-aware planners need; uniform ignores it entirely.
struct PlannerContext {
  const data::Dataset* calib = nullptr;  ///< calibration examples (hawq requires it)
  std::int64_t sample = 128;             ///< max calibration examples used
  std::uint64_t seed = 17;               ///< probe RNG seed (deterministic plans)
};

/// Self-registering planner factories, keyed by spec name.
class PlannerRegistry {
 public:
  /// Builds a plan from the spec args after "name:" (may be empty).
  using Factory = std::function<QuantPlan(nn::Module& model, const std::string& args,
                                          const PlannerContext& ctx)>;

  static PlannerRegistry& instance();

  void add(const std::string& name, Factory factory,
           const std::vector<std::string>& aliases = {});

  /// Builds a plan by planner name. Throws hero::Error listing the
  /// registered planners when `name` is unknown.
  QuantPlan create(const std::string& name, const std::string& args, nn::Module& model,
                   const PlannerContext& ctx) const;

  bool contains(const std::string& name) const;

  /// Canonical (non-alias) registered names, sorted.
  std::vector<std::string> names() const;

 private:
  PlannerRegistry() = default;
  struct Entry {
    Factory factory;
    bool is_alias = false;
  };
  std::map<std::string, Entry> entries_;
};

/// Performs registration at static-initialization time; use through
/// HERO_REGISTER_QUANT_PLANNER below.
struct PlannerRegistration {
  PlannerRegistration(const std::string& name, PlannerRegistry::Factory factory,
                      const std::vector<std::string>& aliases = {});
};

#define HERO_PLANNER_CONCAT_INNER(a, b) a##b
#define HERO_PLANNER_CONCAT(a, b) HERO_PLANNER_CONCAT_INNER(a, b)

/// Registers a quantization planner from its implementation file:
///   HERO_REGISTER_QUANT_PLANNER("hawq", factory)
#define HERO_REGISTER_QUANT_PLANNER(name, ...)                           \
  static const ::hero::quant::PlannerRegistration HERO_PLANNER_CONCAT(    \
      hero_planner_registration_, __LINE__){name, __VA_ARGS__};

/// Builds a QuantPlan for `model` from a planner spec ("uniform:sym:bits=4",
/// "hawq:budget=5,per_channel"). The spec name is everything before the
/// first ':'; the remainder is handed to the planner verbatim.
QuantPlan plan_quantization(nn::Module& model, const std::string& planner_spec,
                            const PlannerContext& ctx = {});

}  // namespace hero::quant
