// Post-training weight quantization of whole modules (paper §3.1/§5.3).
//
// Quantization API v2: the single-tensor rules live behind the pluggable
// Quantizer interface (quant/quantizer.hpp) and this header applies them to
// models. quantize_module_weights / ScopedWeightQuantization take a
// QuantPlan — one (quantizer, bits) slot per is_weight parameter — so layers
// can run at heterogeneous precision (mixed-precision plans come from
// quant/planner.hpp, e.g. "hawq:budget=5"). Biases and BatchNorm
// affine/stats stay full precision, as in the paper's setup.
//
// Every built-in quantizer rounds each value to a representable point at
// most Δ/2 away, so ‖W_q − W‖∞ ≤ Δ/2 — the ℓ∞ perturbation bound Theorem 2
// converts into a loss bound.
//
// The enum-typed QuantConfig is the v1 configuration; it funnels through the
// same built-in quantizers (bit-for-bit — pinned by the uniform-planner
// parity test), so existing QuantConfig call sites keep working.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"
#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"

namespace hero::quant {

/// v1 homogeneous configuration: one scheme/granularity/bit-width for every
/// weight tensor. Equivalent to the spec string
/// "sym|asym:bits=<bits>[,per_channel]".
struct QuantConfig {
  int bits = 8;
  Scheme scheme = Scheme::kSymmetric;
  Granularity granularity = Granularity::kPerTensor;
};

/// The plan equivalent of a QuantConfig: that quantizer replicated over
/// every weight parameter of `model`.
QuantPlan uniform_plan(nn::Module& model, const QuantConfig& config);

/// Fake-quantizes `w`: quantize to `config.bits` then dequantize back to
/// float. This is exactly the deployed-weight value; stats (if non-null)
/// receive the round-trip error. Shorthand for the built-in uniform
/// quantizer's Quantizer::quantize.
Tensor quantize_dequantize(const Tensor& w, const QuantConfig& config,
                           QuantStats* stats = nullptr);

/// Snapshot of the full-precision weights, used to restore after evaluating a
/// quantized model.
using WeightSnapshot = std::vector<Tensor>;

/// Clones all is_weight parameter tensors.
WeightSnapshot snapshot_weights(nn::Module& model);

/// Restores a snapshot taken by snapshot_weights.
void restore_weights(nn::Module& model, const WeightSnapshot& snapshot);

/// Quantizes every is_weight parameter in place, each through its own plan
/// slot (plan.layers must match Module::weight_parameters() in count).
/// Returns aggregate stats: max over tensors of max_abs_error / bin width,
/// and the numel-weighted mean of per-tensor MSEs (= the true model-wide
/// MSE).
QuantStats quantize_module_weights(nn::Module& model, const QuantPlan& plan);

/// Homogeneous v1 entry point: applies uniform_plan(model, config).
QuantStats quantize_module_weights(nn::Module& model, const QuantConfig& config);

/// RAII helper: quantizes on construction, restores full precision on
/// destruction. Use for post-training quantization sweeps. Constructible
/// from a heterogeneous QuantPlan, a v1 QuantConfig, or a quantizer spec
/// string ("sym:bits=4,per_channel") applied uniformly.
class ScopedWeightQuantization {
 public:
  ScopedWeightQuantization(nn::Module& model, const QuantPlan& plan);
  ScopedWeightQuantization(nn::Module& model, const QuantConfig& config);
  ScopedWeightQuantization(nn::Module& model, const std::string& layer_spec);
  ~ScopedWeightQuantization();
  ScopedWeightQuantization(const ScopedWeightQuantization&) = delete;
  ScopedWeightQuantization& operator=(const ScopedWeightQuantization&) = delete;

  const QuantStats& stats() const { return stats_; }

 private:
  nn::Module& model_;
  WeightSnapshot snapshot_;
  QuantStats stats_;
};

}  // namespace hero::quant
