// Post-training linear uniform weight quantization (paper §3.1, Theorem 2).
//
// Every value is rounded to a representable point at most Δ/2 away, so
// ‖W_q − W‖∞ ≤ Δ/2 — the ℓ∞ perturbation bound that Theorem 2 converts into
// a loss bound. The symmetric scheme uses the zero-preserving signed grid
// Δ = max|w| / (2^(n-1) − 1), q = round(w/Δ) (HAWQ convention): zero is
// exactly representable and Q(−w) == −Q(w). The asymmetric scheme is an
// affine grid over [min(w), max(w)] with 2^n − 1 steps. Per-tensor and
// per-channel granularity cover the "all quantization schemes" claim of the
// paper's §5.3.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace hero::quant {

enum class Scheme {
  kSymmetric,   ///< signed grid over [-max|w|, +max|w|]; 0 is a grid point
  kAsymmetric,  ///< range [min(w), max(w)] with affine zero-point
};

enum class Granularity {
  kPerTensor,   ///< one scale for the whole tensor
  kPerChannel,  ///< one scale per output channel (conv dim 0 / linear dim 1)
};

struct QuantConfig {
  int bits = 8;
  Scheme scheme = Scheme::kSymmetric;
  Granularity granularity = Granularity::kPerTensor;
};

/// Error statistics of one quantization round trip.
struct QuantStats {
  float max_abs_error = 0.0f;  ///< ‖W_q − W‖∞ (must be ≤ max bin_width / 2)
  float mse = 0.0f;
  float max_bin_width = 0.0f;  ///< largest Δ across channels
};

/// Fake-quantizes `w`: quantize to `bits` then dequantize back to float.
/// This is exactly the deployed-weight value; stats (if non-null) receive the
/// round-trip error.
Tensor quantize_dequantize(const Tensor& w, const QuantConfig& config,
                           QuantStats* stats = nullptr);

/// Snapshot of the full-precision weights, used to restore after evaluating a
/// quantized model.
using WeightSnapshot = std::vector<Tensor>;

/// Clones all is_weight parameter tensors.
WeightSnapshot snapshot_weights(nn::Module& model);

/// Restores a snapshot taken by snapshot_weights.
void restore_weights(nn::Module& model, const WeightSnapshot& snapshot);

/// Quantizes every is_weight parameter in place (paper setting: weights only;
/// biases and BatchNorm affine/stats stay full precision). Returns aggregate
/// stats (max over tensors of max_abs_error / bin width, mean of MSEs).
QuantStats quantize_module_weights(nn::Module& model, const QuantConfig& config);

/// RAII helper: quantizes on construction, restores full precision on
/// destruction. Use for post-training quantization sweeps.
class ScopedWeightQuantization {
 public:
  ScopedWeightQuantization(nn::Module& model, const QuantConfig& config);
  ~ScopedWeightQuantization();
  ScopedWeightQuantization(const ScopedWeightQuantization&) = delete;
  ScopedWeightQuantization& operator=(const ScopedWeightQuantization&) = delete;

  const QuantStats& stats() const { return stats_; }

 private:
  nn::Module& model_;
  WeightSnapshot snapshot_;
  QuantStats stats_;
};

}  // namespace hero::quant
