#include "hessian/spectral.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hero::hessian {

namespace {

ParamVector apply_hvp(const LossClosure& loss, const Params& params, const ParamVector& v,
                      HvpMode mode) {
  return mode == HvpMode::kExact ? hvp_exact(loss, params, v)
                                 : hvp_finite_diff(loss, params, v);
}

}  // namespace

PowerIterationResult power_iteration(const LossClosure& loss, const Params& params, Rng& rng,
                                     int max_iters, double tol, HvpMode mode) {
  PowerIterationResult result;
  ParamVector v = random_like(params, rng);
  double v_norm = norm(v);
  HERO_CHECK(v_norm > 0.0);
  scale(v, static_cast<float>(1.0 / v_norm));

  double lambda = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    ParamVector hv = apply_hvp(loss, params, v, mode);
    const double new_lambda = dot(v, hv);  // Rayleigh quotient (v is unit)
    const double hv_norm = norm(hv);
    result.iterations = it + 1;
    if (hv_norm < 1e-12) {
      // H v ~ 0: the dominant eigenvalue along this direction is zero.
      lambda = 0.0;
      break;
    }
    // Residual ‖Hv − λv‖ measures eigenpair quality (deep copy: a plain
    // ParamVector copy would alias hv's storage and corrupt it).
    ParamVector residual = clone(hv);
    axpy(residual, v, static_cast<float>(-new_lambda));
    result.residual = norm(residual);
    scale(hv, static_cast<float>(1.0 / hv_norm));
    v = std::move(hv);
    const bool converged = std::fabs(new_lambda - lambda) <= tol * std::max(1.0, std::fabs(new_lambda));
    lambda = new_lambda;
    if (converged && it > 0) break;
  }
  result.eigenvalue = lambda;
  result.eigenvector = std::move(v);
  return result;
}

double hutchinson_trace(const LossClosure& loss, const Params& params, Rng& rng, int probes,
                        HvpMode mode) {
  HERO_CHECK(probes >= 1);
  double acc = 0.0;
  for (int p = 0; p < probes; ++p) {
    // Rademacher probe: ±1 entries.
    ParamVector z;
    z.reserve(params.size());
    for (const auto& param : params) {
      Tensor t(param.shape());
      float* data = t.data();
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        data[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
      }
      z.push_back(std::move(t));
    }
    const ParamVector hz = apply_hvp(loss, params, z, mode);
    acc += dot(z, hz);
  }
  return acc / static_cast<double>(probes);
}

std::vector<double> block_sensitivities(const LossClosure& loss, const Params& params,
                                        BlockMetric metric, Rng& rng, int iters,
                                        HvpMode mode) {
  HERO_CHECK(iters >= 1);
  std::vector<double> out;
  out.reserve(params.size());
  for (const ag::Variable& param : params) {
    // Restricting `params` to one block restricts the HVP to that block's
    // rows and columns of H: the probe is zero outside the block and only
    // the block's gradient entries are differentiated.
    const Params block{param};
    if (metric == BlockMetric::kLambdaMax) {
      const PowerIterationResult top =
          power_iteration(loss, block, rng, iters, /*tol=*/1e-2, mode);
      out.push_back(std::fabs(top.eigenvalue));
    } else {
      const double trace = hutchinson_trace(loss, block, rng, iters, mode);
      out.push_back(std::fabs(trace) / static_cast<double>(param.value().numel()));
    }
  }
  return out;
}

ParamVector hero_probe(const Params& params, const ParamVector& g) {
  ParamVector z;
  z.reserve(params.size());
  for (const Tensor& gi : g) z.emplace_back(gi.shape());
  hero_probe(params, g, z);
  return z;
}

void hero_probe(const Params& params, const ParamVector& g, ParamVector& out) {
  HERO_CHECK(params.size() == g.size());
  HERO_CHECK(out.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g_norm = g[i].l2_norm();
    const float w_norm = params[i].value().l2_norm();
    out[i].copy_(g[i]);
    if (g_norm > 0.0f) {
      out[i].mul_(w_norm / g_norm);
    } else {
      out[i].fill_(0.0f);
    }
  }
}

double hessian_norm_along_gradient(const LossClosure& loss, const Params& params, float h) {
  HERO_CHECK(h > 0.0f);
  const ParamVector g = gradient(loss, params);
  const ParamVector z = hero_probe(params, g);
  if (norm(z) == 0.0) return 0.0;
  // ∇L(W + h z)
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], h);
  ParamVector g_pert = gradient(loss, params);
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], -h);
  // ‖∇L(W + h z) − ∇L(W)‖ / h ≈ ‖H z‖
  axpy(g_pert, g, -1.0f);
  return norm(g_pert) / static_cast<double>(h);
}

}  // namespace hero::hessian
