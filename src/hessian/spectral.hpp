// Spectral diagnostics of the weight Hessian: the quantities Theorem 3 bounds
// (λ_max) and the quantities Figure 2 plots (‖Hz‖ along the Eq. 15 probe).
#pragma once

#include "hessian/hvp.hpp"

namespace hero::hessian {

enum class HvpMode { kExact, kFiniteDiff };

struct PowerIterationResult {
  double eigenvalue = 0.0;   ///< dominant |eigenvalue| estimate of H
  ParamVector eigenvector;   ///< unit-norm direction
  int iterations = 0;
  double residual = 0.0;     ///< ‖Hv − λv‖ at convergence
};

/// Power iteration on H using repeated HVPs. Converges to the eigenvalue of
/// largest magnitude; for loss minima (H ⪰ 0) this is λ_max of Theorem 3.
PowerIterationResult power_iteration(const LossClosure& loss, const Params& params, Rng& rng,
                                     int max_iters = 30, double tol = 1e-3,
                                     HvpMode mode = HvpMode::kExact);

/// Hutchinson estimator of tr(H) = E_z[zᵀHz] with Rademacher probes.
double hutchinson_trace(const LossClosure& loss, const Params& params, Rng& rng,
                        int probes = 8, HvpMode mode = HvpMode::kExact);

/// Metric for per-parameter-block Hessian sensitivity (block_sensitivities).
enum class BlockMetric {
  kLambdaMax,  ///< |λ_max| of the block Hessian via power iteration (HAWQ)
  kTrace,      ///< average Hutchinson trace, tr(H_block)/numel (HAWQ-v2 style)
};

/// Per-layer Hessian sensitivity: for each parameter in `params`, the metric
/// of the Hessian restricted to that parameter block alone (off-block
/// curvature ignored — the HAWQ approximation that makes per-layer bit
/// allocation tractable). `iters` bounds the power iterations / Hutchinson
/// probes per block. Feeds the hawq quantization planner (quant/planner.hpp).
std::vector<double> block_sensitivities(const LossClosure& loss, const Params& params,
                                        BlockMetric metric, Rng& rng, int iters = 12,
                                        HvpMode mode = HvpMode::kExact);

/// ‖H z‖ with z the HERO probe of Eq. (15): per-parameter-tensor
/// z_i = ‖W_i‖₂ · g_i / ‖g_i‖₂, estimated by the same finite difference the
/// regularizer uses: ‖∇L(W + h z) − ∇L(W)‖ / h. This is the Figure 2 metric.
double hessian_norm_along_gradient(const LossClosure& loss, const Params& params,
                                   float h = 0.5f);

/// Builds the Eq. (15) probe from the current gradient `g`: scaled gradient
/// direction per parameter tensor. Zero tensors where ‖g_i‖ = 0.
ParamVector hero_probe(const Params& params, const ParamVector& g);

/// In-place variant writing into preallocated parameter-shaped `out` (the
/// Session API's reused StepContext scratch buffers); no allocation.
void hero_probe(const Params& params, const ParamVector& g, ParamVector& out);

}  // namespace hero::hessian
