#include "hessian/hvp.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace hero::hessian {

ParamVector hvp_exact(const LossClosure& loss, const Params& params, const ParamVector& v) {
  HERO_CHECK(params.size() == v.size());
  const ag::Variable out = loss();
  const std::vector<ag::Variable> g = ag::grad(out, params, /*create_graph=*/true);
  std::vector<ag::Variable> v_consts;
  v_consts.reserve(v.size());
  for (const Tensor& t : v) v_consts.emplace_back(ag::Variable::constant(t));
  const ag::Variable gv = ag::group_dot(g, v_consts);
  const std::vector<ag::Variable> hv = ag::grad(gv, params);
  ParamVector result;
  result.reserve(hv.size());
  for (const auto& h : hv) result.push_back(h.value().clone());
  return result;
}

ParamVector hvp_finite_diff(const LossClosure& loss, const Params& params, const ParamVector& v,
                            float eps) {
  HERO_CHECK(params.size() == v.size());
  const double v_norm = norm(v);
  if (v_norm == 0.0) return zeros_like(params);
  const float step = eps / static_cast<float>(v_norm);

  auto grads_at_offset = [&](float offset) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value().add_(v[i], offset);
    }
    ParamVector g = gradient(loss, params);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value().add_(v[i], -offset);
    }
    return g;
  };

  ParamVector up = grads_at_offset(step);
  const ParamVector down = grads_at_offset(-step);
  // (up - down) / (2 * step)
  for (std::size_t i = 0; i < up.size(); ++i) {
    up[i].add_(down[i], -1.0f);
    up[i].mul_(1.0f / (2.0f * step));
  }
  return up;
}

ParamVector clone(const ParamVector& v) {
  ParamVector out;
  out.reserve(v.size());
  for (const Tensor& t : v) out.push_back(t.clone());
  return out;
}

double dot(const ParamVector& a, const ParamVector& b) {
  HERO_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    HERO_CHECK(a[i].numel() == b[i].numel());
    const float* pa = a[i].data();
    const float* pb = b[i].data();
    // Deterministic chunked reduction per tensor (chunk layout independent
    // of the thread count); tensors combine in parameter order.
    acc += runtime::parallel_reduce_sum(
        0, a[i].numel(), 1 << 15, [pa, pb](std::int64_t e0, std::int64_t e1) {
          double partial = 0.0;
          for (std::int64_t e = e0; e < e1; ++e) partial += static_cast<double>(pa[e]) * pb[e];
          return partial;
        });
  }
  return acc;
}

double norm(const ParamVector& v) { return std::sqrt(dot(v, v)); }

void scale(ParamVector& v, float s) {
  for (Tensor& t : v) t.mul_(s);
}

void axpy(ParamVector& a, const ParamVector& b, float s) {
  HERO_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i].add_(b[i], s);
}

ParamVector random_like(const Params& params, Rng& rng) {
  ParamVector v;
  v.reserve(params.size());
  for (const auto& p : params) v.push_back(Tensor::randn(p.shape(), rng));
  return v;
}

ParamVector zeros_like(const Params& params) {
  ParamVector v;
  v.reserve(params.size());
  for (const auto& p : params) v.push_back(Tensor::zeros(p.shape()));
  return v;
}

ParamVector gradient(const LossClosure& loss, const Params& params) {
  const ag::Variable out = loss();
  const std::vector<ag::Variable> g = ag::grad(out, params);
  ParamVector result;
  result.reserve(g.size());
  for (const auto& gi : g) result.push_back(gi.value().clone());
  return result;
}

}  // namespace hero::hessian
