// Loss-surface contour scanning (Figure 3), following the filter-normalized
// random-direction visualization of Li et al. [15]: two random directions are
// rescaled so each output filter matches the norm of the corresponding weight
// filter, removing scale invariances that would distort the picture.
#pragma once

#include <string>

#include "hessian/hvp.hpp"

namespace hero::hessian {

struct LandscapeConfig {
  int grid = 21;        ///< grid points per axis (odd keeps the center exact)
  float radius = 1.0f;  ///< scan extent: alpha, beta in [-radius, radius]
  std::uint64_t seed = 7;
};

struct LossSurface {
  int grid = 0;
  float radius = 0.0f;
  std::vector<float> losses;  ///< row-major [grid x grid], losses[(iy*grid)+ix]
  float center_loss = 0.0f;

  float at(int iy, int ix) const { return losses[static_cast<std::size_t>(iy * grid + ix)]; }
  /// Fraction of grid cells with loss - center_loss < threshold: the "flat
  /// region" the paper's Figure 3 shows as the inner contour.
  double flat_fraction(float threshold = 0.1f) const;
};

/// Generates a filter-normalized random direction for the given parameters.
/// Rank >= 2 tensors are normalized per output filter; rank-1 per tensor.
ParamVector filter_normalized_direction(const Params& params, Rng& rng);

/// Scans loss(W + alpha d1 + beta d2) over the grid; parameter values are
/// perturbed in place and restored afterwards.
LossSurface scan_loss_surface(const LossClosure& loss, const Params& params,
                              const LandscapeConfig& config);

/// Renders the surface as an ASCII contour map (one char per cell, banded by
/// loss increase over the center) for terminal inspection.
std::string render_ascii(const LossSurface& surface);

}  // namespace hero::hessian
