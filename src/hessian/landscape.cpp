#include "hessian/landscape.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hero::hessian {

double LossSurface::flat_fraction(float threshold) const {
  std::int64_t flat = 0;
  for (const float v : losses) {
    if (v - center_loss < threshold) ++flat;
  }
  return static_cast<double>(flat) / static_cast<double>(losses.size());
}

ParamVector filter_normalized_direction(const Params& params, Rng& rng) {
  ParamVector d;
  d.reserve(params.size());
  for (const auto& p : params) {
    Tensor t = Tensor::randn(p.shape(), rng);
    const Tensor& w = p.value();
    if (t.ndim() >= 2) {
      // Normalize each output filter (slice along dim 0) to the weight
      // filter's norm: d_f <- d_f / ||d_f|| * ||w_f||.
      const std::int64_t filters = t.dim(0);
      const std::int64_t slab = t.numel() / filters;
      for (std::int64_t f = 0; f < filters; ++f) {
        float* pd = t.data() + f * slab;
        const float* pw = w.data() + f * slab;
        double dn = 0.0;
        double wn = 0.0;
        for (std::int64_t i = 0; i < slab; ++i) {
          dn += static_cast<double>(pd[i]) * pd[i];
          wn += static_cast<double>(pw[i]) * pw[i];
        }
        const double s = dn > 0.0 ? std::sqrt(wn / dn) : 0.0;
        for (std::int64_t i = 0; i < slab; ++i) pd[i] = static_cast<float>(pd[i] * s);
      }
    } else {
      const float dn = t.l2_norm();
      const float wn = w.l2_norm();
      t.mul_(dn > 0.0f ? wn / dn : 0.0f);
    }
    d.push_back(std::move(t));
  }
  return d;
}

LossSurface scan_loss_surface(const LossClosure& loss, const Params& params,
                              const LandscapeConfig& config) {
  HERO_CHECK(config.grid >= 3);
  Rng rng(config.seed);
  Rng rng1 = rng.split(1);
  Rng rng2 = rng.split(2);
  const ParamVector d1 = filter_normalized_direction(params, rng1);
  const ParamVector d2 = filter_normalized_direction(params, rng2);

  // Snapshot the center point.
  ParamVector center;
  center.reserve(params.size());
  for (const auto& p : params) center.push_back(p.value().clone());

  LossSurface surface;
  surface.grid = config.grid;
  surface.radius = config.radius;
  surface.losses.resize(static_cast<std::size_t>(config.grid) * config.grid);

  auto eval_loss = [&]() {
    ag::NoGradGuard guard;
    return loss().value().item();
  };

  surface.center_loss = eval_loss();

  for (int iy = 0; iy < config.grid; ++iy) {
    const float beta =
        config.radius * (2.0f * static_cast<float>(iy) / (config.grid - 1) - 1.0f);
    for (int ix = 0; ix < config.grid; ++ix) {
      const float alpha =
          config.radius * (2.0f * static_cast<float>(ix) / (config.grid - 1) - 1.0f);
      for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor& value = params[i].mutable_value();
        value.copy_(center[i]);
        value.add_(d1[i], alpha);
        value.add_(d2[i], beta);
      }
      surface.losses[static_cast<std::size_t>(iy * config.grid + ix)] = eval_loss();
    }
  }
  // Restore the center point.
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().copy_(center[i]);
  return surface;
}

std::string render_ascii(const LossSurface& surface) {
  // Bands of loss increase over the center, matching the paper's contours:
  // '.' < 0.1, ':' < 0.3, '-' < 1, '=' < 3, '#' >= 3.
  std::string out;
  out.reserve(static_cast<std::size_t>(surface.grid + 1) * surface.grid);
  for (int iy = 0; iy < surface.grid; ++iy) {
    for (int ix = 0; ix < surface.grid; ++ix) {
      const float rise = surface.at(iy, ix) - surface.center_loss;
      char c = '#';
      if (rise < 0.1f) {
        c = '.';
      } else if (rise < 0.3f) {
        c = ':';
      } else if (rise < 1.0f) {
        c = '-';
      } else if (rise < 3.0f) {
        c = '=';
      }
      out += c;
    }
    out += '\n';
  }
  return out;
}

}  // namespace hero::hessian
