// Hessian-vector products with respect to model weights.
//
// Two implementations:
//  * hvp_exact — double backprop (grad of <grad L, v>), exact up to float32;
//    requires the loss closure to be twice differentiable, which every layer
//    in this library is.
//  * hvp_finite_diff — central difference of first-order gradients, the
//    approximation HERO's Eq. (14) builds on; cheaper but O(eps^2) biased.
#pragma once

#include <functional>
#include <vector>

#include "autograd/functional.hpp"
#include "autograd/variable.hpp"

namespace hero::hessian {

/// Re-evaluates the loss at the parameters' *current* values, recording a
/// fresh autograd graph each call (e.g. a closure running a model forward on
/// a fixed batch).
using LossClosure = std::function<ag::Variable()>;

/// Parameter handles the Hessian is taken with respect to.
using Params = std::vector<ag::Variable>;

/// A vector in parameter space (one tensor per parameter).
using ParamVector = std::vector<Tensor>;

/// H·v via double backprop: grad_W <grad_W L, v>.
ParamVector hvp_exact(const LossClosure& loss, const Params& params, const ParamVector& v);

/// H·v ≈ (∇L(W + εu) − ∇L(W − εu)) / (2ε) · ‖v‖ with u = v/‖v‖.
/// Perturbs and restores the parameter values in place.
ParamVector hvp_finite_diff(const LossClosure& loss, const Params& params, const ParamVector& v,
                            float eps = 1e-3f);

// ---- Parameter-space vector helpers ----------------------------------------
// NOTE: copying a ParamVector copies Tensor handles, which SHARE storage.
// Use clone() before mutating a vector derived from another.
/// Deep copy (fresh storage for every tensor).
ParamVector clone(const ParamVector& v);
double dot(const ParamVector& a, const ParamVector& b);
double norm(const ParamVector& v);
void scale(ParamVector& v, float s);
/// a += s * b
void axpy(ParamVector& a, const ParamVector& b, float s);
ParamVector random_like(const Params& params, Rng& rng);
ParamVector zeros_like(const Params& params);
/// Materializes the current gradient of `loss` as a detached ParamVector.
ParamVector gradient(const LossClosure& loss, const Params& params);

}  // namespace hero::hessian
