#include "optim/schedule.hpp"

#include <cmath>
#include <numbers>

namespace hero::optim {

float CosineSchedule::lr(std::int64_t step, std::int64_t total_steps) const {
  if (total_steps <= 1) return base_lr_;
  const double progress =
      static_cast<double>(step) / static_cast<double>(total_steps - 1);
  const double clamped = progress < 0.0 ? 0.0 : (progress > 1.0 ? 1.0 : progress);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * clamped));
  return static_cast<float>(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

float StepSchedule::lr(std::int64_t step, std::int64_t total_steps) const {
  if (total_steps <= 0 || num_drops_ <= 0) return base_lr_;
  const std::int64_t period = total_steps / (num_drops_ + 1);
  const std::int64_t drops = period > 0 ? step / period : 0;
  float lr = base_lr_;
  for (std::int64_t d = 0; d < drops && d < num_drops_; ++d) lr *= factor_;
  return lr;
}

}  // namespace hero::optim
