// Learning-rate schedules. The paper trains every method with a cosine
// schedule from a 0.1 initial rate (§5.1).
#pragma once

#include <cstdint>

namespace hero::optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate at `step` of `total_steps`.
  virtual float lr(std::int64_t step, std::int64_t total_steps) const = 0;
};

/// Cosine annealing from base_lr to min_lr over the full run.
class CosineSchedule : public LrSchedule {
 public:
  explicit CosineSchedule(float base_lr, float min_lr = 0.0f)
      : base_lr_(base_lr), min_lr_(min_lr) {}
  float lr(std::int64_t step, std::int64_t total_steps) const override;

 private:
  float base_lr_;
  float min_lr_;
};

/// Constant rate.
class ConstantSchedule : public LrSchedule {
 public:
  explicit ConstantSchedule(float base_lr) : base_lr_(base_lr) {}
  float lr(std::int64_t, std::int64_t) const override { return base_lr_; }

 private:
  float base_lr_;
};

/// Step decay: lr *= factor every `period` fraction of training.
class StepSchedule : public LrSchedule {
 public:
  StepSchedule(float base_lr, float factor, int num_drops)
      : base_lr_(base_lr), factor_(factor), num_drops_(num_drops) {}
  float lr(std::int64_t step, std::int64_t total_steps) const override;

 private:
  float base_lr_;
  float factor_;
  int num_drops_;
};

}  // namespace hero::optim
