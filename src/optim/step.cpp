#include "optim/step.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hero::optim {

StepContext::StepContext(nn::Module& model, Rng rng) : model_(&model), rng_(rng) {
  params_ = model.parameters();
  HERO_CHECK_MSG(!params_.empty(), "StepContext created for a model with no parameters");
  param_vars_.reserve(params_.size());
  grads_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    param_vars_.push_back(p->var);
    grads_.emplace_back(p->var.shape());
  }
}

void StepContext::begin_step(const data::Batch& batch, std::int64_t step, int epoch) {
  batch_ = &batch;
  step_ = step;
  epoch_ = epoch;
}

const data::Batch& StepContext::batch() const {
  HERO_CHECK_MSG(batch_ != nullptr, "StepContext::batch() before begin_step()");
  return *batch_;
}

std::vector<Tensor>& StepContext::scratch(std::size_t slot) {
  while (slot >= scratch_.size()) scratch_.emplace_back();
  std::vector<Tensor>& s = scratch_[slot];
  if (s.size() != params_.size()) {
    s.clear();
    s.reserve(params_.size());
    for (const nn::Parameter* p : params_) s.emplace_back(p->var.shape());
  }
  return s;
}

float StepContext::grad_norm() const { return param_vector_norm(grads_); }

float param_vector_norm(const std::vector<Tensor>& v) {
  double sum = 0.0;
  for (const Tensor& t : v) {
    const double n = t.l2_norm();
    sum += n * n;
  }
  return static_cast<float>(std::sqrt(sum));
}

}  // namespace hero::optim
