// Momentum SGD over explicit gradient vectors.
//
// The HERO family of methods (Eq. 17) produces *custom* gradient vectors
// (perturbed gradients plus regularizer terms), so the optimizer exposes
// step_with(grads) rather than reading Parameter::grad(); the convenience
// step() reads accumulated .grad()s for plain training loops. Weight decay
// (the paper's alpha·W term) is added here so every training method shares
// the identical decay path.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace hero::optim {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  Sgd(std::vector<nn::Parameter*> params, const SgdConfig& config);

  /// v <- momentum*v + (g + wd*w);  w <- w − lr*v
  void step_with(const std::vector<Tensor>& grads);

  /// Reads gradients accumulated on the parameters by ag::backward().
  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  const SgdConfig& config() const { return config_; }
  const std::vector<nn::Parameter*>& params() const { return params_; }

 private:
  std::vector<nn::Parameter*> params_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

}  // namespace hero::optim
