// Session API v1: the per-step contract between the Trainer and a
// TrainingMethod.
//
// A TrainingMethod no longer receives bare (model, batch, grads) arguments;
// it receives a StepContext that carries everything one step may need —
// model, batch, step/epoch indices, a deterministic RNG stream — and, most
// importantly, owns *preallocated, reused* parameter-shaped buffers:
//  * grads()    — the method's output gradient, one tensor per parameter,
//                 allocated once and written in place every step;
//  * scratch(k) — numbered parameter-shaped scratch vectors for
//                 intermediate quantities (clean gradients, probes, ...).
// Reusing these buffers keeps the per-step allocation count flat across a
// training run (measured by bench_step_overhead).
//
// The method reports back through StepResult: the batch loss plus the
// diagnostics that used to leak out of methods through side channels
// (HeroMethod::last_regularizer() in the pre-session API).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "data/loader.hpp"
#include "nn/module.hpp"

namespace hero::optim {

/// Result of one training step.
struct StepResult {
  float loss = 0.0f;       ///< unregularized batch loss L(W)
  float grad_norm = 0.0f;  ///< ℓ2 norm of the produced gradient across all parameters
  /// Method-specific regularizer value: HERO's Hessian term G (Alg. 1 line
  /// 10), GRAD L1's ‖∇L‖₁. Zero for plain SGD.
  float regularizer = 0.0f;
  /// ‖h·z‖₂ of the weight perturbation applied this step (HERO and the
  /// first-order rule); zero for unperturbed methods.
  float perturbation_norm = 0.0f;
};

/// Per-step state handed to TrainingMethod::step. One StepContext lives for
/// a whole training run (or bench loop) so its buffers amortize; bind each
/// batch with begin_step() before calling the method.
///
/// The context caches the model's parameter list; it assumes the parameter
/// set (count and shapes) is fixed for the lifetime of the context, which
/// holds for every module in this library.
class StepContext {
 public:
  explicit StepContext(nn::Module& model, Rng rng = Rng(0));

  /// Binds the batch and indices for the next step.
  void begin_step(const data::Batch& batch, std::int64_t step = 0, int epoch = 0);

  nn::Module& model() { return *model_; }
  const data::Batch& batch() const;
  std::int64_t step() const { return step_; }
  int epoch() const { return epoch_; }
  /// Deterministic per-run RNG stream for stochastic methods.
  Rng& rng() { return rng_; }

  /// Cached parameter handles (registration order, stable for the run).
  const std::vector<nn::Parameter*>& params() const { return params_; }
  const std::vector<ag::Variable>& param_vars() const { return param_vars_; }

  /// The method's output gradient buffers: one tensor per parameter,
  /// preallocated to the parameter shapes and reused across steps. Methods
  /// write them in place (copy_/add_), never reallocate.
  std::vector<Tensor>& grads() { return grads_; }
  const std::vector<Tensor>& grads() const { return grads_; }

  /// Numbered parameter-shaped scratch vectors, allocated on first use and
  /// reused on every later step. Contents are unspecified on entry.
  std::vector<Tensor>& scratch(std::size_t slot);

  /// ℓ2 norm of the current grads() across all parameters (StepResult
  /// convenience).
  float grad_norm() const;

 private:
  nn::Module* model_;
  const data::Batch* batch_ = nullptr;
  std::int64_t step_ = 0;
  int epoch_ = 0;
  Rng rng_;
  std::vector<nn::Parameter*> params_;
  std::vector<ag::Variable> param_vars_;
  std::vector<Tensor> grads_;
  // Deque so growing one slot never invalidates references handed out for
  // another (methods hold several slots at once).
  std::deque<std::vector<Tensor>> scratch_;
};

/// ℓ2 norm of a parameter-space vector (Σ‖v_i‖² under one sqrt).
float param_vector_norm(const std::vector<Tensor>& v);

}  // namespace hero::optim
