// Training methods: per-batch gradient rules behind the Session API.
//
// A TrainingMethod turns one StepContext (model + batch + reused buffers)
// into the gradient vector the optimizer steps with, reporting loss and
// diagnostics through StepResult. This file holds the paper's baselines:
//  * SgdMethod      — plain ERM gradient ∇L(W).
//  * SamMethod      — "first-order only" rule of Table 3: the descent
//                     gradient is taken at the HERO-perturbed point,
//                     ∇L(W + h·z), the SAM-style sharpness term without the
//                     Hessian regularizer.
//  * GradL1Method   — Gradient ℓ1 (Alizadeh et al. [1]): ∇(L + λ‖∇L‖₁),
//                     computed exactly via double backprop.
// HERO itself lives in src/core (it is the paper's contribution).
// Weight decay is applied uniformly by the Sgd optimizer, not here.
//
// Methods self-register with the MethodRegistry (see optim/registry.hpp)
// from their implementation files; build them by name via
// MethodRegistry::instance().create("sgd") or a "name:key=value" spec.
#pragma once

#include <memory>
#include <string>

#include "data/loader.hpp"
#include "nn/module.hpp"
#include "optim/step.hpp"

namespace hero::optim {

class TrainingMethod {
 public:
  virtual ~TrainingMethod() = default;
  /// Computes this method's gradients for ctx.batch() into ctx.grads()
  /// (preallocated, written in place) and reports loss + diagnostics.
  virtual StepResult step(StepContext& ctx) = 0;
  virtual std::string name() const = 0;
};

/// Mean softmax cross-entropy of the model on a batch (graph-recording).
ag::Variable batch_loss(nn::Module& model, const data::Batch& batch);

/// Evaluation helper: accuracy and mean loss over a dataset in eval mode.
struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
};
EvalResult evaluate(nn::Module& model, const data::Dataset& dataset,
                    std::int64_t batch_size = 256);

class SgdMethod : public TrainingMethod {
 public:
  StepResult step(StepContext& ctx) override;
  std::string name() const override { return "sgd"; }
};

/// First-order-only ablation (Table 3): gradient at the perturbed point
/// W* = W + h·z with z the Eq. (15) probe.
class SamMethod : public TrainingMethod {
 public:
  explicit SamMethod(float h) : h_(h) {}
  StepResult step(StepContext& ctx) override;
  std::string name() const override { return "first_order"; }

 private:
  float h_;
};

/// Gradient ℓ1 regularization: total gradient ∇L + λ·∇‖∇L‖₁.
class GradL1Method : public TrainingMethod {
 public:
  explicit GradL1Method(float lambda) : lambda_(lambda) {}
  StepResult step(StepContext& ctx) override;
  std::string name() const override { return "grad_l1"; }

 private:
  float lambda_;
};

}  // namespace hero::optim
