#include "optim/methods.hpp"

#include "autograd/functional.hpp"
#include "common/check.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"

namespace hero::optim {

namespace {

std::vector<ag::Variable> param_vars(nn::Module& model) {
  std::vector<ag::Variable> vars;
  for (nn::Parameter* p : model.parameters()) vars.push_back(p->var);
  return vars;
}

}  // namespace

ag::Variable batch_loss(nn::Module& model, const data::Batch& batch) {
  const ag::Variable logits = model.forward(ag::Variable::constant(batch.x));
  return ag::softmax_cross_entropy(logits, batch.y);
}

EvalResult evaluate(nn::Module& model, const data::Dataset& dataset, std::int64_t batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  ag::NoGradGuard guard;
  EvalResult result;
  double loss_sum = 0.0;
  double acc_sum = 0.0;
  std::int64_t total = 0;
  for (std::int64_t start = 0; start < dataset.size(); start += batch_size) {
    const std::int64_t count = std::min(batch_size, dataset.size() - start);
    const data::Dataset part = dataset.slice(start, count);
    const ag::Variable logits = model.forward(ag::Variable::constant(part.features));
    const ag::Variable loss = ag::softmax_cross_entropy(logits, part.labels);
    loss_sum += static_cast<double>(loss.value().item()) * count;
    acc_sum += ag::accuracy(logits.value(), part.labels) * count;
    total += count;
  }
  model.set_training(was_training);
  result.loss = loss_sum / static_cast<double>(total);
  result.accuracy = acc_sum / static_cast<double>(total);
  return result;
}

StepResult SgdMethod::compute_gradients(nn::Module& model, const data::Batch& batch,
                                        std::vector<Tensor>& grads) {
  const auto params = param_vars(model);
  const ag::Variable loss = batch_loss(model, batch);
  const auto gs = ag::grad(loss, params);
  grads.clear();
  grads.reserve(gs.size());
  for (const auto& g : gs) grads.push_back(g.value());
  return {loss.value().item()};
}

StepResult SamMethod::compute_gradients(nn::Module& model, const data::Batch& batch,
                                        std::vector<Tensor>& grads) {
  const auto params = param_vars(model);
  // Gradient at W for the probe direction.
  const ag::Variable loss = batch_loss(model, batch);
  const auto gs = ag::grad(loss, params);
  hessian::ParamVector g;
  g.reserve(gs.size());
  for (const auto& gi : gs) g.push_back(gi.value().clone());
  const hessian::ParamVector z = hessian::hero_probe(params, g);

  // Perturb to W* = W + h z; gradient there; restore.
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], h_);
  {
    nn::BatchNormFreezeGuard bn_freeze;
    const ag::Variable loss_star = batch_loss(model, batch);
    const auto gs_star = ag::grad(loss_star, params);
    grads.clear();
    grads.reserve(gs_star.size());
    for (const auto& gi : gs_star) grads.push_back(gi.value().clone());
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], -h_);
  return {loss.value().item()};
}

StepResult GradL1Method::compute_gradients(nn::Module& model, const data::Batch& batch,
                                           std::vector<Tensor>& grads) {
  const auto params = param_vars(model);
  // Total objective L + λ‖∇L‖₁; its gradient needs grad-of-grad.
  const ag::Variable loss = batch_loss(model, batch);
  const auto gs = ag::grad(loss, params, /*create_graph=*/true);
  const ag::Variable g_l1 = ag::group_l1_norm(gs);
  const ag::Variable reg_loss = ag::add(loss, ag::mul_scalar(g_l1, lambda_));
  const auto total = ag::grad(reg_loss, params);
  grads.clear();
  grads.reserve(total.size());
  for (const auto& g : total) grads.push_back(g.value());
  return {loss.value().item()};
}

}  // namespace hero::optim
