#include "optim/methods.hpp"

#include "autograd/functional.hpp"
#include "common/check.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"
#include "optim/registry.hpp"

namespace hero::optim {

ag::Variable batch_loss(nn::Module& model, const data::Batch& batch) {
  const ag::Variable logits = model.forward(ag::Variable::constant(batch.x));
  return ag::softmax_cross_entropy(logits, batch.y);
}

EvalResult evaluate(nn::Module& model, const data::Dataset& dataset, std::int64_t batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  ag::NoGradGuard guard;
  EvalResult result;
  double loss_sum = 0.0;
  double acc_sum = 0.0;
  std::int64_t total = 0;
  for (std::int64_t start = 0; start < dataset.size(); start += batch_size) {
    const std::int64_t count = std::min(batch_size, dataset.size() - start);
    const data::Dataset part = dataset.slice(start, count);
    const ag::Variable logits = model.forward(ag::Variable::constant(part.features));
    const ag::Variable loss = ag::softmax_cross_entropy(logits, part.labels);
    loss_sum += static_cast<double>(loss.value().item()) * count;
    acc_sum += ag::accuracy(logits.value(), part.labels) * count;
    total += count;
  }
  model.set_training(was_training);
  result.loss = loss_sum / static_cast<double>(total);
  result.accuracy = acc_sum / static_cast<double>(total);
  return result;
}

StepResult SgdMethod::step(StepContext& ctx) {
  const auto& params = ctx.param_vars();
  const ag::Variable loss = batch_loss(ctx.model(), ctx.batch());
  const auto gs = ag::grad(loss, params);
  std::vector<Tensor>& grads = ctx.grads();
  for (std::size_t i = 0; i < params.size(); ++i) grads[i].copy_(gs[i].value());
  StepResult result;
  result.loss = loss.value().item();
  result.grad_norm = ctx.grad_norm();
  return result;
}

StepResult SamMethod::step(StepContext& ctx) {
  const auto& params = ctx.param_vars();
  // Gradient at W for the probe direction.
  const ag::Variable loss = batch_loss(ctx.model(), ctx.batch());
  const auto gs = ag::grad(loss, params);
  hessian::ParamVector& g = ctx.scratch(0);
  for (std::size_t i = 0; i < params.size(); ++i) g[i].copy_(gs[i].value());
  hessian::ParamVector& z = ctx.scratch(1);
  hessian::hero_probe(params, g, z);

  // Perturb to W* = W + h z; gradient there; restore.
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], h_);
  std::vector<Tensor>& grads = ctx.grads();
  {
    nn::BatchNormFreezeGuard bn_freeze;
    const ag::Variable loss_star = batch_loss(ctx.model(), ctx.batch());
    const auto gs_star = ag::grad(loss_star, params);
    for (std::size_t i = 0; i < params.size(); ++i) grads[i].copy_(gs_star[i].value());
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i].mutable_value().add_(z[i], -h_);

  StepResult result;
  result.loss = loss.value().item();
  result.grad_norm = ctx.grad_norm();
  result.perturbation_norm = h_ * param_vector_norm(z);
  return result;
}

StepResult GradL1Method::step(StepContext& ctx) {
  const auto& params = ctx.param_vars();
  // Total objective L + λ‖∇L‖₁; its gradient needs grad-of-grad.
  const ag::Variable loss = batch_loss(ctx.model(), ctx.batch());
  const auto gs = ag::grad(loss, params, /*create_graph=*/true);
  const ag::Variable g_l1 = ag::group_l1_norm(gs);
  const ag::Variable reg_loss = ag::add(loss, ag::mul_scalar(g_l1, lambda_));
  const auto total = ag::grad(reg_loss, params);
  std::vector<Tensor>& grads = ctx.grads();
  for (std::size_t i = 0; i < params.size(); ++i) grads[i].copy_(total[i].value());
  StepResult result;
  result.loss = loss.value().item();
  result.grad_norm = ctx.grad_norm();
  result.regularizer = g_l1.value().item();
  return result;
}

HERO_REGISTER_METHOD(
    "sgd", [](const MethodConfig&) { return std::make_unique<SgdMethod>(); }, {})

HERO_REGISTER_METHOD(
    "first_order",
    [](const MethodConfig& config) {
      return std::make_unique<SamMethod>(config_float(config, "h", 0.01f));
    },
    {"h"}, {"sam"})

HERO_REGISTER_METHOD(
    "grad_l1",
    [](const MethodConfig& config) {
      return std::make_unique<GradL1Method>(config_float(config, "lambda", 0.01f));
    },
    {"lambda"})

}  // namespace hero::optim
