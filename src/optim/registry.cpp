#include "optim/registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace hero::optim {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

MethodSpec parse_method_spec(const std::string& spec) {
  HERO_CHECK_MSG(!spec.empty(), "empty training-method spec");
  MethodSpec parsed;
  const auto colon = spec.find(':');
  parsed.name = spec.substr(0, colon);
  HERO_CHECK_MSG(!parsed.name.empty(), "training-method spec has no name: '" << spec << "'");
  if (colon == std::string::npos) return parsed;

  std::string entry;
  std::istringstream rest(spec.substr(colon + 1));
  while (std::getline(rest, entry, ',')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    HERO_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "method config entry is not key=value: '" << entry << "' in '" << spec
                                                             << "'");
    const std::string key = entry.substr(0, eq);
    HERO_CHECK_MSG(parsed.config.find(key) == parsed.config.end(),
                   "duplicate method config key '" << key << "' in '" << spec << "'");
    parsed.config[key] = entry.substr(eq + 1);
  }
  return parsed;
}

float config_float(const MethodConfig& config, const std::string& key, float fallback) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  try {
    std::size_t used = 0;
    const float value = std::stof(it->second, &used);
    HERO_CHECK_MSG(used == it->second.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    throw Error("method config key '" + key + "' is not a number: '" + it->second + "'");
  }
}

int config_int(const MethodConfig& config, const std::string& key, int fallback) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  try {
    std::size_t used = 0;
    const int value = std::stoi(it->second, &used);
    HERO_CHECK_MSG(used == it->second.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    throw Error("method config key '" + key + "' is not an integer: '" + it->second + "'");
  }
}

bool config_bool(const MethodConfig& config, const std::string& key, bool fallback) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  if (const auto parsed = parse_bool(it->second)) return *parsed;
  throw Error("method config key '" + key + "' is not a boolean: '" + it->second +
              "' (accepted: " + std::string(kBoolSpellings) + ")");
}

std::string config_str(const MethodConfig& config, const std::string& key,
                       const std::string& fallback) {
  const auto it = config.find(key);
  return it == config.end() ? fallback : it->second;
}

void check_known_keys(const MethodConfig& config, const std::vector<std::string>& known,
                      const std::string& method_name) {
  for (const auto& [key, value] : config) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      const std::string accepted =
          known.empty() ? "takes no config keys" : "accepted: " + join(known);
      throw Error("unknown config key '" + key + "' for training method '" + method_name +
                  "' (" + accepted + ")");
    }
  }
}

MethodRegistry& MethodRegistry::instance() {
  static MethodRegistry registry;
  return registry;
}

void MethodRegistry::add(const std::string& name, Factory factory,
                         const std::vector<std::string>& accepted_keys,
                         const std::vector<std::string>& aliases) {
  HERO_CHECK_MSG(!name.empty(), "cannot register a training method with an empty name");
  HERO_CHECK_MSG(entries_.find(name) == entries_.end(),
                 "training method '" << name << "' registered twice");
  entries_[name] = Entry{factory, accepted_keys, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    HERO_CHECK_MSG(entries_.find(alias) == entries_.end(),
                   "training-method alias '" << alias << "' registered twice");
    entries_[alias] = Entry{factory, accepted_keys, /*is_alias=*/true};
  }
}

std::unique_ptr<TrainingMethod> MethodRegistry::create(const std::string& name,
                                                       const MethodConfig& config) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown training method '" + name + "' (registered: " + join(names()) +
                ")");
  }
  check_known_keys(config, it->second.accepted_keys, name);
  return it->second.factory(config);
}

std::unique_ptr<TrainingMethod> MethodRegistry::create_from_spec(
    const std::string& spec) const {
  const MethodSpec parsed = parse_method_spec(spec);
  return create(parsed.name, parsed.config);
}

bool MethodRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

bool MethodRegistry::accepts_key(const std::string& name, const std::string& key) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  const auto& keys = it->second.accepted_keys;
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

std::vector<std::string> MethodRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

MethodRegistration::MethodRegistration(const std::string& name,
                                       MethodRegistry::Factory factory,
                                       const std::vector<std::string>& accepted_keys,
                                       const std::vector<std::string>& aliases) {
  MethodRegistry::instance().add(name, std::move(factory), accepted_keys, aliases);
}

}  // namespace hero::optim
