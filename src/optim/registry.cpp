#include "optim/registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hero::optim {

MethodSpec parse_method_spec(const std::string& spec) {
  const ParsedSpec parsed = parse_spec(spec, "training-method");
  return MethodSpec{parsed.name, parsed.config};
}

float config_float(const MethodConfig& config, const std::string& key, float fallback) {
  return spec_float(config, key, fallback, "method");
}

int config_int(const MethodConfig& config, const std::string& key, int fallback) {
  return spec_int(config, key, fallback, "method");
}

bool config_bool(const MethodConfig& config, const std::string& key, bool fallback) {
  return spec_bool(config, key, fallback, "method");
}

std::string config_str(const MethodConfig& config, const std::string& key,
                       const std::string& fallback) {
  return spec_str(config, key, fallback);
}

void check_known_keys(const MethodConfig& config, const std::vector<std::string>& known,
                      const std::string& method_name) {
  check_known_spec_keys(config, known, "training method '" + method_name + "'");
}

MethodRegistry& MethodRegistry::instance() {
  static MethodRegistry registry;
  return registry;
}

void MethodRegistry::add(const std::string& name, Factory factory,
                         const std::vector<std::string>& accepted_keys,
                         const std::vector<std::string>& aliases) {
  HERO_CHECK_MSG(!name.empty(), "cannot register a training method with an empty name");
  HERO_CHECK_MSG(entries_.find(name) == entries_.end(),
                 "training method '" << name << "' registered twice");
  entries_[name] = Entry{factory, accepted_keys, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    HERO_CHECK_MSG(entries_.find(alias) == entries_.end(),
                   "training-method alias '" << alias << "' registered twice");
    entries_[alias] = Entry{factory, accepted_keys, /*is_alias=*/true};
  }
}

std::unique_ptr<TrainingMethod> MethodRegistry::create(const std::string& name,
                                                       const MethodConfig& config) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown training method '" + name + "' (registered: " + join_names(names()) +
                ")");
  }
  check_known_keys(config, it->second.accepted_keys, name);
  return it->second.factory(config);
}

std::unique_ptr<TrainingMethod> MethodRegistry::create_from_spec(
    const std::string& spec) const {
  const MethodSpec parsed = parse_method_spec(spec);
  return create(parsed.name, parsed.config);
}

bool MethodRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

bool MethodRegistry::accepts_key(const std::string& name, const std::string& key) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  const auto& keys = it->second.accepted_keys;
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

std::vector<std::string> MethodRegistry::accepted_keys(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown training method '" + name + "' (registered: " + join_names(names()) +
                ")");
  }
  return it->second.accepted_keys;
}

std::vector<std::string> MethodRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

MethodRegistration::MethodRegistration(const std::string& name,
                                       MethodRegistry::Factory factory,
                                       const std::vector<std::string>& accepted_keys,
                                       const std::vector<std::string>& aliases) {
  MethodRegistry::instance().add(name, std::move(factory), accepted_keys, aliases);
}

}  // namespace hero::optim
