// Session API v1: self-registering training-method factories.
//
// Every TrainingMethod registers itself (name + factory) from its own
// translation unit with HERO_REGISTER_METHOD, so adding a method never means
// editing a central switch. Consumers build methods by name plus a
// key→value config map, or from a single spec string:
//
//   auto m = MethodRegistry::instance().create("hero", {{"gamma", "0.2"}});
//   auto m = MethodRegistry::instance().create_from_spec("hero:gamma=0.2,h=0.01");
//
// The spec form is what benches and examples accept on the command line
// (--method=hero:gamma=0.2,h=0.01), so new configurations need no recompile.
// Factories validate their keys: unknown method names and unknown config
// keys both throw hero::Error with the accepted alternatives listed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec.hpp"
#include "optim/methods.hpp"

namespace hero::optim {

/// Key→value method configuration ("gamma" → "0.2"). The shared spec grammar
/// (common/spec.hpp) is used by every registry family; this alias keeps the
/// method-registry vocabulary.
using MethodConfig = SpecConfig;

/// A parsed "name:key=value,key=value" spec.
struct MethodSpec {
  std::string name;
  MethodConfig config;
};

/// Parses "hero:gamma=0.2,h=0.01" (or a bare "hero"). Throws hero::Error on
/// malformed entries (missing '=', empty key, duplicate key).
MethodSpec parse_method_spec(const std::string& spec);

// ---- Typed config lookups used by factories --------------------------------
float config_float(const MethodConfig& config, const std::string& key, float fallback);
int config_int(const MethodConfig& config, const std::string& key, int fallback);
/// Accepts 1/0, true/false, yes/no, on/off (case-insensitive); throws on
/// anything else.
bool config_bool(const MethodConfig& config, const std::string& key, bool fallback);
std::string config_str(const MethodConfig& config, const std::string& key,
                       const std::string& fallback);
/// Throws hero::Error naming the offending key when `config` contains a key
/// not in `known` — factories call this so typos fail loudly.
void check_known_keys(const MethodConfig& config, const std::vector<std::string>& known,
                      const std::string& method_name);

class MethodRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TrainingMethod>(const MethodConfig&)>;

  /// The process-wide registry the HERO_REGISTER_METHOD initializers fill.
  static MethodRegistry& instance();

  /// Registers a factory under `name` with the config keys it accepts, plus
  /// optional aliases ("sam" for "first_order"). Throws on duplicate names.
  /// create() rejects keys outside `accepted_keys` before invoking the
  /// factory, so factories only parse.
  void add(const std::string& name, Factory factory,
           const std::vector<std::string>& accepted_keys = {},
           const std::vector<std::string>& aliases = {});

  /// Builds a method by (possibly aliased) name. Throws hero::Error listing
  /// the registered names when `name` is unknown, or the accepted keys when
  /// `config` contains one the method does not take.
  std::unique_ptr<TrainingMethod> create(const std::string& name,
                                         const MethodConfig& config = {}) const;

  /// Builds from a "name:key=value,..." spec string.
  std::unique_ptr<TrainingMethod> create_from_spec(const std::string& spec) const;

  bool contains(const std::string& name) const;

  /// True when the (possibly aliased) method takes the given config key —
  /// lets generic drivers (benches) inject defaults like "h" only where
  /// they apply, without hard-coding method names.
  bool accepts_key(const std::string& name, const std::string& key) const;

  /// The config keys the (possibly aliased) method accepts — for listings
  /// and generic --help output. Throws on unknown names.
  std::vector<std::string> accepted_keys(const std::string& name) const;

  /// Canonical (non-alias) registered names, sorted.
  std::vector<std::string> names() const;

 private:
  MethodRegistry() = default;
  struct Entry {
    Factory factory;
    std::vector<std::string> accepted_keys;
    bool is_alias = false;
  };
  std::map<std::string, Entry> entries_;
};

/// Performs registration at static-initialization time; use through
/// HERO_REGISTER_METHOD below.
struct MethodRegistration {
  MethodRegistration(const std::string& name, MethodRegistry::Factory factory,
                     const std::vector<std::string>& accepted_keys = {},
                     const std::vector<std::string>& aliases = {});
};

#define HERO_METHOD_CONCAT_INNER(a, b) a##b
#define HERO_METHOD_CONCAT(a, b) HERO_METHOD_CONCAT_INNER(a, b)

/// Registers a training method from its implementation file:
///   HERO_REGISTER_METHOD("sgd", [](const MethodConfig& c) { ... }, {});
///   HERO_REGISTER_METHOD("first_order", factory, {"h"}, {"sam"});
/// Arguments after the factory: the accepted config keys, then aliases.
/// The library is linked as an object library so these initializers always
/// reach the final binary.
#define HERO_REGISTER_METHOD(name, ...)                            \
  static const ::hero::optim::MethodRegistration HERO_METHOD_CONCAT( \
      hero_method_registration_, __LINE__){name, __VA_ARGS__};

}  // namespace hero::optim
