#include "optim/sgd.hpp"

#include "common/check.hpp"

namespace hero::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  HERO_CHECK_MSG(!params_.empty(), "Sgd created with no parameters");
  velocity_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    velocity_.push_back(Tensor::zeros(p->var.shape()));
  }
}

void Sgd::step_with(const std::vector<Tensor>& grads) {
  HERO_CHECK_MSG(grads.size() == params_.size(), "gradient count mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = params_[i]->var.mutable_value();
    HERO_CHECK_MSG(grads[i].numel() == w.numel(), "gradient shape mismatch at parameter " << i);
    Tensor& v = velocity_[i];
    // v <- momentum * v + (g + wd * w)
    v.mul_(config_.momentum);
    v.add_(grads[i]);
    if (config_.weight_decay != 0.0f) v.add_(w, config_.weight_decay);
    // w <- w - lr * v
    w.add_(v, -config_.lr);
  }
}

void Sgd::step() {
  std::vector<Tensor> grads;
  grads.reserve(params_.size());
  for (const nn::Parameter* p : params_) grads.push_back(p->var.grad());
  step_with(grads);
}

}  // namespace hero::optim
