#include "serve/model_store.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hero::serve {

namespace {

std::string known_names(const std::vector<std::string>& names) {
  if (names.empty()) return "(store is empty)";
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

ModelStore::ModelStore(Config config) : config_(config) {
  HERO_CHECK_MSG(config_.max_bytes > 0, "ModelStore max_bytes must be positive");
  acquires_ = obs::metrics().counter("store.acquires");
  misses_ = obs::metrics().counter("store.misses");
  installs_ = obs::metrics().counter("store.installs");
  swaps_ = obs::metrics().counter("store.swaps");
  evictions_ = obs::metrics().counter("store.evictions");
}

std::size_t ModelStore::install(const std::string& name,
                                const deploy::ModelArtifact& artifact) {
  HERO_CHECK_MSG(!name.empty(), "ModelStore model name must be non-empty");
  // Decode outside the lock: rebuilding a model is the expensive part and a
  // hot-swap must not stall concurrent acquires of other models.
  auto session = std::make_shared<deploy::InferenceSession>(artifact, config_.session);
  const std::size_t bytes = session->resident_bytes();

  common::MutexLock lock(mutex_);
  store_stats_.installs += 1;
  installs_->increment();
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.stats.name == name; });
  if (it == entries_.end()) {
    Entry entry;
    entry.stats.name = name;
    entries_.push_back(std::move(entry));
    it = entries_.end() - 1;
  } else {
    store_stats_.swaps += 1;
    swaps_->increment();
    it->stats.swaps += 1;
  }
  it->session = std::move(session);  // old session drains via live handles
  it->last_used = ++clock_;
  it->stats.plan_label = it->session->plan_label();
  it->stats.executor = it->session->executor_name();
  it->stats.average_bits = it->session->average_bits();
  it->stats.resident_bytes = bytes;
  // Peak records the transient occupancy BEFORE eviction trims back to the
  // budget — that is the high-water mark the host actually had to hold.
  store_stats_.peak_resident_bytes =
      std::max(store_stats_.peak_resident_bytes, resident_bytes_locked());
  enforce_budget_locked(name);
  store_stats_.resident_bytes = resident_bytes_locked();
  return bytes;
}

std::size_t ModelStore::load(const std::string& name, const std::string& path) {
  return install(name, deploy::load_model(path));
}

SessionHandle ModelStore::acquire(const std::string& name) {
  SessionHandle handle = try_acquire(name);
  if (handle == nullptr) {
    throw Error("ModelStore: unknown model '" + name + "' (loaded: " +
                known_names(names()) + ")");
  }
  return handle;
}

SessionHandle ModelStore::try_acquire(const std::string& name) {
  common::MutexLock lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.stats.name == name) {
      entry.last_used = ++clock_;
      entry.stats.acquires += 1;
      acquires_->increment();
      // The IR executor's arenas grow as new input shapes are first served;
      // re-reading keeps the LRU budget honest about real occupancy.
      entry.stats.resident_bytes = entry.session->resident_bytes();
      store_stats_.resident_bytes = resident_bytes_locked();
      store_stats_.peak_resident_bytes =
          std::max(store_stats_.peak_resident_bytes, store_stats_.resident_bytes);
      return entry.session;
    }
  }
  store_stats_.misses += 1;
  misses_->increment();
  return nullptr;
}

bool ModelStore::evict(const std::string& name) {
  common::MutexLock lock(mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.stats.name == name; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  store_stats_.evictions += 1;
  evictions_->increment();
  store_stats_.resident_bytes = resident_bytes_locked();
  return true;
}

bool ModelStore::contains(const std::string& name) const {
  common::MutexLock lock(mutex_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.stats.name == name; });
}

std::vector<std::string> ModelStore::names() const {
  common::MutexLock lock(mutex_);
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const Entry& e : entries_) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->last_used > b->last_used; });
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (const Entry* e : ordered) out.push_back(e->stats.name);
  return out;
}

std::size_t ModelStore::resident_bytes() const {
  common::MutexLock lock(mutex_);
  return resident_bytes_locked();
}

ModelStats ModelStore::stats(const std::string& name) const {
  common::MutexLock lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.stats.name == name) return entry.stats;
  }
  throw Error("ModelStore: no stats for unknown model '" + name + "'");
}

StoreStats ModelStore::stats() const {
  common::MutexLock lock(mutex_);
  return store_stats_;
}

void ModelStore::enforce_budget_locked(const std::string& keep) {
  while (entries_.size() > 1 && resident_bytes_locked() > config_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->stats.name == keep) continue;
      if (victim == entries_.end() || it->last_used < victim->last_used) victim = it;
    }
    if (victim == entries_.end()) return;  // only `keep` is left
    entries_.erase(victim);
    store_stats_.evictions += 1;
    evictions_->increment();
  }
}

std::size_t ModelStore::resident_bytes_locked() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) total += e.stats.resident_bytes;
  return total;
}

}  // namespace hero::serve
