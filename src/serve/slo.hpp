// SLO accounting: objective attainment and error-budget burn per SLA class.
//
// An SLA class (serve/batch.hpp) promises a p99 latency target
// (sla_target_p99_us). This layer measures how the served traffic did
// against that promise from a latency histogram — typically the sliding
// windowed per-class histogram `net.request_us.<class>` that NetServer
// records, so the report answers "are we meeting the objective NOW", not
// "since the process started".
//
// All the arithmetic is bucket-resolution and integer-exact: `within` counts
// samples in buckets whose INCLUSIVE upper bound is <= the target (targets
// are bucket bounds by construction), so two hosts fed identical histograms
// report identical attainment. An empty histogram vacuously attains 1.0 —
// no traffic, no violated promises.
//
// Error-budget burn follows the SRE convention against a 99% objective:
// burn = (1 - attainment) / 0.01. burn <= 1 means the tier is inside its
// budget; burn 5.0 means violations are landing 5x faster than the budget
// allows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/batch.hpp"

namespace hero::serve {

/// Fraction of the (1 - objective) error budget allowed to miss: the
/// objective is "99% of requests within target".
inline constexpr double kSloObjective = 0.99;

struct SloReport {
  SlaClass sla = SlaClass::kStandard;
  std::int64_t target_p99_us = 0;
  std::int64_t count = 0;   ///< samples measured
  std::int64_t within = 0;  ///< samples at or under the target
  std::int64_t p99_us = 0;  ///< measured p99 (bucket upper bound)
  double attainment = 1.0;  ///< within / count; 1.0 when count == 0
  double budget_burn = 0.0; ///< (1 - attainment) / (1 - kSloObjective)
};

/// Metrics-registry histogram name carrying the class's request latency
/// (recorded by NetServer): "net.request_us.<sla_name>". Returns a static
/// string literal.
const char* slo_histogram_name(SlaClass sla);

/// Scores `hist` (a *_us latency histogram or windowed delta of one)
/// against `target_p99_us`.
SloReport compute_slo(const obs::SnapshotEntry& hist, SlaClass sla,
                      std::int64_t target_p99_us);

/// compute_slo with the class's default target (sla_target_p99_us).
SloReport compute_slo(const obs::SnapshotEntry& hist, SlaClass sla);

/// Compact JSON array for the extended stats payload:
/// [{"class":"latency","target_p99_us":...,"count":...,"within":...,
///   "p99_us":...,"attainment":0.991234,"burn":0.876600},...]
/// Ratios print with six fixed decimals so the bytes are deterministic for
/// identical reports.
std::string slo_json(const std::vector<SloReport>& reports);

}  // namespace hero::serve
