// Multi-model store: named HPKG artifacts as refcounted, hot-swappable
// InferenceSessions under an LRU byte budget.
//
// The serving fleet naturally hosts several artifact variants of one model at
// once (a HAWQ mixed-precision plan next to uniform 4/8-bit exports), plus
// unrelated models. The store is the single owner of those sessions:
//
//  * acquire() hands out a shared_ptr handle and bumps the entry's LRU
//    clock. A handle pins its session for as long as the caller holds it —
//    requests in flight keep serving the weights they started with even if
//    the entry is evicted or hot-swapped underneath them.
//  * install() with an existing name is a HOT-SWAP: the entry's session is
//    replaced atomically (w.r.t. the store lock); subsequent acquires see the
//    new artifact, old handles drain on the old one. No request is ever
//    dropped or served a half-updated model.
//  * Eviction is LRU by resident bytes (InferenceSession::resident_bytes —
//    the decoded fp32 footprint, which is what actually occupies serving
//    RAM). Installing over budget evicts least-recently-acquired entries,
//    never the entry just installed: one model larger than the whole budget
//    still serves, it just keeps the store at a single entry.
//
// All methods are thread-safe; the lock covers only map bookkeeping, never a
// forward pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "deploy/inference.hpp"

namespace hero::serve {

/// Refcounted view of one loaded model; keeps the session (and its decoded
/// weights) alive independently of store eviction and hot-swaps.
using SessionHandle = std::shared_ptr<deploy::InferenceSession>;

/// Per-model counters, reset when the name is evicted (not by hot-swaps).
struct ModelStats {
  std::string name;
  std::string plan_label;   ///< provenance of the currently installed artifact
  double average_bits = 0.0;
  std::size_t resident_bytes = 0;
  std::int64_t acquires = 0;  ///< successful acquire()/try_acquire() calls
  std::int64_t swaps = 0;     ///< hot-swaps (installs over an existing name)
};

/// Store-wide counters.
struct StoreStats {
  std::int64_t installs = 0;   ///< install() calls (fresh names and swaps)
  std::int64_t swaps = 0;      ///< installs that replaced an existing name
  /// Entries removed — by LRU pressure to fit the byte budget, or by an
  /// explicit evict() call.
  std::int64_t evictions = 0;
  std::int64_t misses = 0;     ///< try_acquire()/acquire() of an unknown name
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
};

class ModelStore {
 public:
  struct Config {
    /// LRU budget over the summed resident_bytes of all entries.
    std::size_t max_bytes = std::size_t{256} * 1024 * 1024;
  };

  ModelStore() : ModelStore(Config{}) {}
  explicit ModelStore(Config config);

  /// Loads (or hot-swaps) `name` from an in-memory artifact. Returns the
  /// entry's resident bytes. Evicts LRU entries (never `name` itself) until
  /// the budget holds.
  std::size_t install(const std::string& name, const deploy::ModelArtifact& artifact);

  /// load_model(path) + install().
  std::size_t load(const std::string& name, const std::string& path);

  /// Handle to a loaded model; bumps its LRU recency. Throws hero::Error for
  /// an unknown name.
  SessionHandle acquire(const std::string& name);

  /// Like acquire(), but returns nullptr (and counts a miss) when absent —
  /// the Server uses this so an unknown model fails one request, not a
  /// worker.
  SessionHandle try_acquire(const std::string& name);

  /// Removes `name` if present; in-flight handles stay valid. Returns
  /// whether an entry was removed (counted as an eviction).
  bool evict(const std::string& name);

  bool contains(const std::string& name) const;
  /// Loaded names, most-recently-acquired first.
  std::vector<std::string> names() const;
  std::size_t resident_bytes() const;
  std::size_t max_bytes() const { return config_.max_bytes; }

  /// Per-model counters; throws hero::Error for an unknown name.
  ModelStats stats(const std::string& name) const;
  StoreStats stats() const;

 private:
  struct Entry {
    SessionHandle session;
    std::uint64_t last_used = 0;  ///< LRU clock value of the latest acquire
    ModelStats stats;
  };

  /// Evicts least-recently-used entries until the budget holds; never evicts
  /// `keep`. Caller holds mutex_.
  void enforce_budget_locked(const std::string& keep);
  std::size_t resident_bytes_locked() const;

  Config config_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // few models; linear scans beat a map here
  std::uint64_t clock_ = 0;
  StoreStats store_stats_;
};

}  // namespace hero::serve
