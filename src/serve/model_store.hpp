// Multi-model store: named HPKG artifacts as refcounted, hot-swappable
// InferenceSessions under an LRU byte budget.
//
// The serving fleet naturally hosts several artifact variants of one model at
// once (a HAWQ mixed-precision plan next to uniform 4/8-bit exports), plus
// unrelated models. The store is the single owner of those sessions:
//
//  * acquire() hands out a shared_ptr handle and bumps the entry's LRU
//    clock. A handle pins its session for as long as the caller holds it —
//    requests in flight keep serving the weights they started with even if
//    the entry is evicted or hot-swapped underneath them.
//  * install() with an existing name is a HOT-SWAP: the entry's session is
//    replaced atomically (w.r.t. the store lock); subsequent acquires see the
//    new artifact, old handles drain on the old one. No request is ever
//    dropped or served a half-updated model.
//  * Eviction is LRU by resident bytes (InferenceSession::resident_bytes —
//    the decoded fp32 footprint, which is what actually occupies serving
//    RAM). Installing over budget evicts least-recently-acquired entries,
//    never the entry just installed: one model larger than the whole budget
//    still serves, it just keeps the store at a single entry.
//
// All methods are thread-safe; the lock covers only map bookkeeping, never a
// forward pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "deploy/inference.hpp"
#include "obs/metrics.hpp"

namespace hero::serve {

/// Refcounted view of one loaded model; keeps the session (and its decoded
/// weights) alive independently of store eviction and hot-swaps.
using SessionHandle = std::shared_ptr<deploy::InferenceSession>;

/// Per-model counters, reset when the name is evicted (not by hot-swaps).
struct ModelStats {
  std::string name;
  std::string plan_label;   ///< provenance of the currently installed artifact
  std::string executor;     ///< engine actually serving ("ir" or "module")
  double average_bits = 0.0;
  /// Weights plus IR arena bytes; refreshed on every acquire because the
  /// executor's arenas grow as new input shapes are first served.
  std::size_t resident_bytes = 0;
  std::int64_t acquires = 0;  ///< successful acquire()/try_acquire() calls
  std::int64_t swaps = 0;     ///< hot-swaps (installs over an existing name)
};

/// Store-wide counters.
struct StoreStats {
  std::int64_t installs = 0;   ///< install() calls (fresh names and swaps)
  std::int64_t swaps = 0;      ///< installs that replaced an existing name
  /// Entries removed — by LRU pressure to fit the byte budget, or by an
  /// explicit evict() call.
  std::int64_t evictions = 0;
  std::int64_t misses = 0;     ///< try_acquire()/acquire() of an unknown name
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
};

class ModelStore {
 public:
  struct Config {
    /// LRU budget over the summed resident_bytes of all entries.
    std::size_t max_bytes = std::size_t{256} * 1024 * 1024;
    /// Session options every installed artifact is served with (executor
    /// knob, IR pattern toggle, backend name).
    deploy::SessionOptions session;
  };

  ModelStore() : ModelStore(Config{}) {}
  explicit ModelStore(Config config);

  /// Loads (or hot-swaps) `name` from an in-memory artifact. Returns the
  /// entry's resident bytes. Evicts LRU entries (never `name` itself) until
  /// the budget holds.
  std::size_t install(const std::string& name, const deploy::ModelArtifact& artifact)
      HERO_EXCLUDES(mutex_);

  /// load_model(path) + install().
  std::size_t load(const std::string& name, const std::string& path)
      HERO_EXCLUDES(mutex_);

  /// Handle to a loaded model; bumps its LRU recency. Throws hero::Error for
  /// an unknown name.
  SessionHandle acquire(const std::string& name) HERO_EXCLUDES(mutex_);

  /// Like acquire(), but returns nullptr (and counts a miss) when absent —
  /// the Server uses this so an unknown model fails one request, not a
  /// worker.
  SessionHandle try_acquire(const std::string& name) HERO_EXCLUDES(mutex_);

  /// Removes `name` if present; in-flight handles stay valid. Returns
  /// whether an entry was removed (counted as an eviction).
  bool evict(const std::string& name) HERO_EXCLUDES(mutex_);

  bool contains(const std::string& name) const HERO_EXCLUDES(mutex_);
  /// Loaded names, most-recently-acquired first.
  std::vector<std::string> names() const HERO_EXCLUDES(mutex_);
  std::size_t resident_bytes() const HERO_EXCLUDES(mutex_);
  std::size_t max_bytes() const { return config_.max_bytes; }

  /// Per-model counters; throws hero::Error for an unknown name.
  ModelStats stats(const std::string& name) const HERO_EXCLUDES(mutex_);
  StoreStats stats() const HERO_EXCLUDES(mutex_);

 private:
  struct Entry {
    SessionHandle session;
    std::uint64_t last_used = 0;  ///< LRU clock value of the latest acquire
    ModelStats stats;
  };

  /// Evicts least-recently-used entries until the budget holds; never evicts
  /// `keep`.
  void enforce_budget_locked(const std::string& keep) HERO_REQUIRES(mutex_);
  std::size_t resident_bytes_locked() const HERO_REQUIRES(mutex_);

  Config config_;
  // Registry mirrors of the store counters ("store.*"), registered at
  // construction so hot-path bumps are relaxed atomic adds only.
  obs::Counter* acquires_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* installs_ = nullptr;
  obs::Counter* swaps_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  mutable common::Mutex mutex_;
  // Few models; linear scans beat a map here.
  std::vector<Entry> entries_ HERO_GUARDED_BY(mutex_);
  std::uint64_t clock_ HERO_GUARDED_BY(mutex_) = 0;
  StoreStats store_stats_ HERO_GUARDED_BY(mutex_);
};

}  // namespace hero::serve
