#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "serve/batch.hpp"

namespace hero::serve {

Server::Server(ModelStore& store, ServerConfig config) : store_(store), config_(config) {
  HERO_CHECK_MSG(config_.workers >= 1, "Server needs at least one worker, got "
                                           << config_.workers);
  // Cold-path instrument registration; the gauges reset because this Server
  // is now the single active owner of the serve.* high-water marks.
  queue_depth_max_ = obs::metrics().gauge("serve.queue.depth_max");
  queued_rows_max_ = obs::metrics().gauge("serve.queue.rows_max");
  queue_depth_max_->reset();
  queued_rows_max_->reset();
  // Live backlog levels (last-write-wins), the queue-depth feed for
  // hero-top; reset for the same single-active-owner reason.
  queue_depth_ = obs::metrics().gauge("serve.queue.depth");
  queue_rows_ = obs::metrics().gauge("serve.queue.rows");
  queue_depth_->reset();
  queue_rows_->reset();
  queue_us_ = obs::metrics().latency_histogram_us("serve.queue_us");
  execute_us_ = obs::metrics().latency_histogram_us("serve.execute_us");
  HERO_CHECK_MSG(config_.max_batch >= 1, "Server max_batch must be >= 1, got "
                                             << config_.max_batch);
  HERO_CHECK_MSG(config_.max_delay_us >= 0, "Server max_delay_us must be >= 0");
  HERO_CHECK_MSG(config_.max_queue_rows > config_.max_batch,
                 "Server max_queue_rows (" << config_.max_queue_rows
                                           << ") must exceed max_batch ("
                                           << config_.max_batch << ")");
  // workers_ is guarded state (shutdown() swaps it out under the lock); the
  // spawned threads block on mutex_ in worker_loop until we release it.
  common::MutexLock lock(mutex_);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

namespace {

void check_features(const Tensor& features) {
  HERO_CHECK_MSG(features.ndim() >= 1 && features.dim(0) > 0,
                 "submit needs a non-empty batch, got shape "
                     << shape_to_string(features.shape()));
}

/// Resolves one request with a value or an error, through whichever channel
/// it carries (future or completion callback).
void resolve_value(Server::Completion& done, std::promise<Tensor>& promise,
                   Tensor logits) {
  if (done) {
    done(std::move(logits), nullptr);
  } else {
    promise.set_value(std::move(logits));
  }
}

void resolve_error(Server::Completion& done, std::promise<Tensor>& promise,
                   std::exception_ptr error) {
  if (done) {
    done(Tensor(), error);
  } else {
    promise.set_exception(error);
  }
}

}  // namespace

/// Whether `rows` more examples fit under the queue bound. An oversize
/// request (rows > bound) is admitted whenever the backlog is below the
/// bound — waiting for an exactly-empty queue could starve it forever under
/// sustained small-request traffic, and the bound is only exceeded by that
/// one request.
bool Server::has_space_locked(std::int64_t rows) const {
  const std::int64_t bound = config_.max_queue_rows;
  return rows > bound ? queued_rows_ < bound : queued_rows_ + rows <= bound;
}

void Server::enqueue_locked(Request request, std::int64_t rows) {
  if (const auto it = sla_.find(request.model); it != sla_.end()) {
    request.sla = it->second;
  }
  // Per-model request tally, registered on the model's first request (the
  // registry mutex nests under mutex_ only on this cold path).
  auto counter_it = model_requests_.find(request.model);
  if (counter_it == model_requests_.end()) {
    counter_it = model_requests_
                     .emplace(request.model,
                              obs::metrics().counter("serve.model." +
                                                     request.model + ".requests"))
                     .first;
  }
  counter_it->second->increment();
  queue_.push_back(std::move(request));
  queued_rows_ += rows;
  stats_.submitted += 1;
  // Legacy shadows AND registry gauges get the same update; the bench
  // parity audit asserts they never diverge.
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, static_cast<std::int64_t>(queue_.size()));
  stats_.max_queued_rows = std::max(stats_.max_queued_rows, queued_rows_);
  queue_depth_max_->update_max(static_cast<std::int64_t>(queue_.size()));
  queued_rows_max_->update_max(queued_rows_);
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  queue_rows_->set(queued_rows_);
}

std::future<Tensor> Server::submit(const std::string& model, const Tensor& features,
                                   const obs::SpanContext& trace) {
  check_features(features);
  const std::int64_t rows = features.dim(0);
  Request request;
  request.model = model;
  request.features = features;
  request.arrival = obs::now();
  request.trace = trace;
  if (request.trace.active() && request.trace.trace_id == 0) {
    request.trace.trace_id = request.trace.sink->next_trace_id();
  }
  std::future<Tensor> future = request.promise.get_future();

  common::UniqueLock lock(mutex_);
  // Backpressure: block while the backlog is at the bound.
  while (!stopping_ && !has_space_locked(rows)) space_cv_.wait(lock);
  if (stopping_) throw Error("Server: submit after shutdown");
  enqueue_locked(std::move(request), rows);
  lock.unlock();
  // notify_all, not notify_one: the arrival that completes a forming batch
  // must reach the worker parked in the coalescing wait_until below, and a
  // single notify can be swallowed by an idle worker whose claimable-work
  // predicate is false (the hot model is claimed). Worker counts are small.
  work_cv_.notify_all();
  return future;
}

bool Server::try_submit(const std::string& model, const Tensor& features,
                        Completion done, const obs::SpanContext& trace) {
  check_features(features);
  HERO_CHECK_MSG(done != nullptr, "try_submit needs a completion callback");
  const std::int64_t rows = features.dim(0);
  Request request;
  request.model = model;
  request.features = features;
  request.done = std::move(done);
  request.arrival = obs::now();
  request.trace = trace;
  if (request.trace.active() && request.trace.trace_id == 0) {
    request.trace.trace_id = request.trace.sink->next_trace_id();
  }

  common::UniqueLock lock(mutex_);
  if (stopping_) throw Error("Server: submit after shutdown");
  // Admission control: no room under the bound means REJECT — the open-loop
  // caller gets an immediate, explicit refusal to turn into an error frame,
  // and the scheduler's own latency promises stay intact for the admitted.
  if (!has_space_locked(rows)) {
    stats_.rejected += 1;
    return false;
  }
  enqueue_locked(std::move(request), rows);
  lock.unlock();
  work_cv_.notify_all();
  return true;
}

void Server::set_sla(const std::string& model, SlaClass sla) {
  common::MutexLock lock(mutex_);
  sla_[model] = sla;
}

SlaClass Server::sla(const std::string& model) const {
  common::MutexLock lock(mutex_);
  const auto it = sla_.find(model);
  return it == sla_.end() ? SlaClass::kStandard : it->second;
}

void Server::drain() {
  common::UniqueLock lock(mutex_);
  while (!(queue_.empty() && in_flight_ == 0)) idle_cv_.wait(lock);
}

void Server::shutdown() {
  std::vector<std::thread> to_join;
  {
    common::MutexLock lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : to_join) t.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    common::MutexLock lock(mutex_);
    s = stats_;
  }
  // The registry gauges are the one source of truth for the high-waters;
  // the shadow values under the lock remain only for the parity audit.
  s.max_queue_depth = queue_depth_max_->value();
  s.max_queued_rows = queued_rows_max_->value();
  return s;
}

std::pair<std::int64_t, std::int64_t> Server::legacy_high_waters() const {
  common::MutexLock lock(mutex_);
  return {stats_.max_queue_depth, stats_.max_queued_rows};
}

std::int64_t Server::effective_delay_us_locked(const Request& head) const {
  std::int64_t delay = sla_delay_us(head.sla, config_.max_delay_us);
  if (config_.adaptive_delay) {
    delay = std::min(delay, adaptive_delay_us(config_.max_delay_us, queued_rows_,
                                              config_.max_batch));
  }
  return delay;
}

void Server::rebuild_views_locked(std::vector<PendingView>& pending) const {
  pending.clear();
  pending.reserve(queue_.size());
  for (const Request& r : queue_) {
    pending.push_back(PendingView{&r.model, &r.features.shape(), sla_priority(r.sla)});
  }
}

bool Server::claimable_or_stopping_locked(std::vector<PendingView>& pending) const {
  if (stopping_) return true;
  // Views are rebuilt on every wake — the queue mutates while we sleep —
  // and reused by both claim selection and batch planning.
  rebuild_views_locked(pending);
  return select_claim(pending, claimed_) < pending.size();
}

void Server::worker_loop() {
  std::vector<PendingView> pending;  // reused scratch; non-owning views
  common::UniqueLock lock(mutex_);
  for (;;) {
    while (!claimable_or_stopping_locked(pending)) work_cv_.wait(lock);
    rebuild_views_locked(pending);
    const std::size_t first = select_claim(pending, claimed_);
    if (first == pending.size()) {
      // Stopping, and every queued request (if any) is claimed by another
      // worker that will retire it. Done.
      if (stopping_) return;
      continue;
    }
    const std::string model = queue_[first].model;
    claimed_.insert(model);

    // Coalescing wait: keep the claim until the batch is full, it can no
    // longer grow (a same-model follower does not fit), the head request's
    // effective-delay deadline expires, or the server is stopping. New
    // arrivals notify work_cv_ and re-enter the planning below; the
    // effective delay is re-evaluated with them, so the adaptive controller
    // tracks the live queue depth. Views are rebuilt on every pass but copy
    // nothing.
    MicroBatchPlan plan;
    bool full = false;
    std::int64_t delay_us = config_.max_delay_us;
    for (;;) {
      rebuild_views_locked(pending);
      std::size_t head = queue_.size();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].model == model) {
          head = i;
          break;
        }
      }
      plan = plan_micro_batch(pending, head, config_.max_batch);
      full = plan.rows >= config_.max_batch;
      delay_us = effective_delay_us_locked(queue_[head]);
      if (full || plan.blocked || stopping_ || delay_us == 0) break;
      const auto deadline = queue_[head].arrival + std::chrono::microseconds(delay_us);
      if (obs::now() >= deadline) break;
      work_cv_.wait_until(lock, deadline);
    }

    // Extract the batch (descending index order keeps earlier indices
    // stable). The claim is HELD through execution: it is what makes the
    // documented per-model FIFO completion order real — the next batch for
    // this model cannot start (let alone finish) before this one resolves.
    std::vector<Request> batch;
    batch.reserve(plan.indices.size());
    for (auto it = plan.indices.rbegin(); it != plan.indices.rend(); ++it) {
      batch.push_back(std::move(queue_[*it]));
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    std::reverse(batch.begin(), batch.end());  // back to FIFO order
    queued_rows_ -= plan.rows;
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    queue_rows_->set(queued_rows_);
    in_flight_ += static_cast<std::int64_t>(batch.size());
    stats_.batches += 1;
    stats_.batched_rows += plan.rows;
    // "Full" covers both releases where waiting could not have helped: at
    // width, or frozen behind a follower that does not fit. A partial batch
    // released with no wait at all (zero effective delay — configured or
    // adaptive — and the shutdown drain) is a flush, not a deadline firing.
    if (full || plan.blocked) {
      stats_.full_batches += 1;
    } else if (delay_us == 0 || stopping_) {
      stats_.flushed_batches += 1;
    } else {
      stats_.deadline_batches += 1;
    }
    lock.unlock();
    space_cv_.notify_all();
    work_cv_.notify_all();  // other models may be claimable

    execute(std::move(batch));
    lock.lock();
    claimed_.erase(model);
    work_cv_.notify_all();  // this model's remaining requests are claimable
  }
}

void Server::execute(std::vector<Request> batch) {
  // Queue-wait accounting: one clock read serves the whole batch (the
  // serve.queue_us histogram and the queue-wait spans share it).
  const std::int64_t dequeue_ns = obs::now_ns();
  std::int64_t batch_rows = 0;
  const obs::SpanContext* traced = nullptr;
  for (const Request& r : batch) {
    const std::int64_t arrival_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            r.arrival.time_since_epoch())
            .count();
    queue_us_->record((dequeue_ns - arrival_ns) / 1000);
    batch_rows += r.features.dim(0);
    if (!r.trace.active()) continue;
    if (traced == nullptr) traced = &r.trace;
    // The queue wait happened in the past relative to this thread, so the
    // span is recorded explicitly with the request's own arrival stamp.
    obs::SpanRecord rec;
    rec.name = "serve.queue";
    rec.category = "serve";
    rec.id = r.trace.sink->next_span_id();
    rec.parent = r.trace.parent;
    rec.trace_id = r.trace.trace_id;
    rec.tid = obs::current_tid();
    rec.arg = r.features.dim(0);
    rec.start_ns = arrival_ns;
    rec.end_ns = dequeue_ns;
    r.trace.sink->record(rec);
  }
  if (traced != nullptr && batch.size() > 1) {
    // Batch-scoped coalescing span: head arrival → extraction, parented
    // under the first traced request (a sampled batch-level view).
    obs::SpanRecord rec;
    rec.name = "serve.coalesce";
    rec.category = "serve";
    rec.id = traced->sink->next_span_id();
    rec.parent = traced->parent;
    rec.trace_id = traced->trace_id;
    rec.tid = obs::current_tid();
    rec.arg = static_cast<std::int64_t>(batch.size());
    rec.start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       batch.front().arrival.time_since_epoch())
                       .count();
    rec.end_ns = dequeue_ns;
    traced->sink->record(rec);
  }
  obs::Span exec_span(traced != nullptr ? traced->sink : nullptr, "serve.execute",
                      "serve", traced != nullptr ? traced->trace_id : 0,
                      traced != nullptr ? traced->parent : 0, batch_rows);

  std::size_t resolved = 0;
  try {
    SessionHandle session = store_.try_acquire(batch.front().model);
    HERO_CHECK_MSG(session != nullptr,
                   "Server: model '" << batch.front().model << "' is not loaded");
    if (batch.size() == 1) {
      // A batch of one IS the direct unbatched predict — no concat/split.
      Tensor logits = session->predict(batch.front().features, exec_span.context());
      resolve_value(batch.front().done, batch.front().promise, std::move(logits));
      resolved = 1;
    } else {
      std::vector<Tensor> features;
      std::vector<std::int64_t> rows;
      features.reserve(batch.size());
      rows.reserve(batch.size());
      for (const Request& r : batch) {
        features.push_back(r.features);
        rows.push_back(r.features.dim(0));
      }
      const Tensor logits =
          session->predict(coalesce_features(features), exec_span.context());
      std::vector<Tensor> parts = split_rows(logits, rows);
      for (; resolved < batch.size(); ++resolved) {
        resolve_value(batch[resolved].done, batch[resolved].promise,
                      std::move(parts[resolved]));
      }
    }
  } catch (...) {
    // Whatever has not been resolved with a value fails with the error —
    // zero drops: every accepted request resolves exactly once.
    for (std::size_t i = resolved; i < batch.size(); ++i) {
      resolve_error(batch[i].done, batch[i].promise, std::current_exception());
    }
  }
  exec_span.finish();
  execute_us_->record((obs::now_ns() - dequeue_ns) / 1000);
  {
    common::MutexLock lock(mutex_);
    in_flight_ -= static_cast<std::int64_t>(batch.size());
    stats_.completed += static_cast<std::int64_t>(resolved);
    stats_.failed += static_cast<std::int64_t>(batch.size() - resolved);
  }
  idle_cv_.notify_all();
}

}  // namespace hero::serve
