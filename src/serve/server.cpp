#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "serve/batch.hpp"

namespace hero::serve {

Server::Server(ModelStore& store, ServerConfig config) : store_(store), config_(config) {
  HERO_CHECK_MSG(config_.workers >= 1, "Server needs at least one worker, got "
                                           << config_.workers);
  HERO_CHECK_MSG(config_.max_batch >= 1, "Server max_batch must be >= 1, got "
                                             << config_.max_batch);
  HERO_CHECK_MSG(config_.max_delay_us >= 0, "Server max_delay_us must be >= 0");
  HERO_CHECK_MSG(config_.max_queue_rows > config_.max_batch,
                 "Server max_queue_rows (" << config_.max_queue_rows
                                           << ") must exceed max_batch ("
                                           << config_.max_batch << ")");
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<Tensor> Server::submit(const std::string& model, const Tensor& features) {
  HERO_CHECK_MSG(features.ndim() >= 1 && features.dim(0) > 0,
                 "submit needs a non-empty batch, got shape "
                     << shape_to_string(features.shape()));
  const std::int64_t rows = features.dim(0);
  Request request;
  request.model = model;
  request.features = features;
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(config_.max_delay_us);
  std::future<Tensor> future = request.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  // Backpressure: block while the backlog is at the bound. An oversize
  // request (rows > max_queue_rows) is admitted whenever the backlog is
  // below the bound — waiting for an exactly-empty queue could starve it
  // forever under sustained small-request traffic, and the bound is only
  // exceeded by that one request.
  space_cv_.wait(lock, [&] {
    return stopping_ || (rows > config_.max_queue_rows
                             ? queued_rows_ < config_.max_queue_rows
                             : queued_rows_ + rows <= config_.max_queue_rows);
  });
  if (stopping_) throw Error("Server: submit after shutdown");
  queue_.push_back(std::move(request));
  queued_rows_ += rows;
  stats_.submitted += 1;
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, static_cast<std::int64_t>(queue_.size()));
  lock.unlock();
  // notify_all, not notify_one: the arrival that completes a forming batch
  // must reach the worker parked in the coalescing wait_until below, and a
  // single notify can be swallowed by an idle worker whose claimable-work
  // predicate is false (the hot model is claimed). Worker counts are small.
  work_cv_.notify_all();
  return future;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Server::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : to_join) t.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Server::first_unclaimed_locked() const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (claimed_.find(queue_[i].model) == claimed_.end()) return i;
  }
  return queue_.size();
}

void Server::worker_loop() {
  std::vector<PendingView> pending;  // reused scratch; non-owning views
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stopping_ || first_unclaimed_locked() < queue_.size(); });
    const std::size_t first = first_unclaimed_locked();
    if (first == queue_.size()) {
      // Stopping, and every queued request (if any) is claimed by another
      // worker that will retire it. Done.
      if (stopping_) return;
      continue;
    }
    const std::string model = queue_[first].model;
    claimed_.insert(model);

    // Coalescing wait: keep the claim until the batch is full, it can no
    // longer grow (a same-model follower does not fit), the oldest claimed
    // request's deadline expires, or the server is stopping. New arrivals
    // notify work_cv_ and re-enter the planning below. Views are rebuilt on
    // every pass (the queue mutates while we sleep) but copy nothing.
    MicroBatchPlan plan;
    bool full = false;
    for (;;) {
      pending.clear();
      pending.reserve(queue_.size());
      std::size_t head = queue_.size();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        pending.push_back(PendingView{&queue_[i].model, &queue_[i].features.shape()});
        if (head == queue_.size() && queue_[i].model == model) head = i;
      }
      plan = plan_micro_batch(pending, head, config_.max_batch);
      full = plan.rows >= config_.max_batch;
      if (full || plan.blocked || stopping_ || config_.max_delay_us == 0) break;
      const auto deadline = queue_[head].deadline;
      if (std::chrono::steady_clock::now() >= deadline) break;
      work_cv_.wait_until(lock, deadline);
    }

    // Extract the batch (descending index order keeps earlier indices
    // stable). The claim is HELD through execution: it is what makes the
    // documented per-model FIFO completion order real — the next batch for
    // this model cannot start (let alone finish) before this one resolves.
    std::vector<Request> batch;
    batch.reserve(plan.indices.size());
    for (auto it = plan.indices.rbegin(); it != plan.indices.rend(); ++it) {
      batch.push_back(std::move(queue_[*it]));
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    std::reverse(batch.begin(), batch.end());  // back to FIFO order
    queued_rows_ -= plan.rows;
    in_flight_ += static_cast<std::int64_t>(batch.size());
    stats_.batches += 1;
    stats_.batched_rows += plan.rows;
    // "Full" covers both releases where waiting could not have helped: at
    // width, or frozen behind a follower that does not fit. A partial batch
    // released with no wait at all (adaptive mode, shutdown drain) is a
    // flush, not a deadline firing.
    if (full || plan.blocked) {
      stats_.full_batches += 1;
    } else if (config_.max_delay_us == 0 || stopping_) {
      stats_.flushed_batches += 1;
    } else {
      stats_.deadline_batches += 1;
    }
    lock.unlock();
    space_cv_.notify_all();
    work_cv_.notify_all();  // other models may be claimable

    execute(std::move(batch));
    lock.lock();
    claimed_.erase(model);
    work_cv_.notify_all();  // this model's remaining requests are claimable
  }
}

void Server::execute(std::vector<Request> batch) {
  std::size_t resolved = 0;
  try {
    SessionHandle session = store_.try_acquire(batch.front().model);
    HERO_CHECK_MSG(session != nullptr,
                   "Server: model '" << batch.front().model << "' is not loaded");
    if (batch.size() == 1) {
      // A batch of one IS the direct unbatched predict — no concat/split.
      batch.front().promise.set_value(session->predict(batch.front().features));
      resolved = 1;
    } else {
      std::vector<Tensor> features;
      std::vector<std::int64_t> rows;
      features.reserve(batch.size());
      rows.reserve(batch.size());
      for (const Request& r : batch) {
        features.push_back(r.features);
        rows.push_back(r.features.dim(0));
      }
      const Tensor logits = session->predict(coalesce_features(features));
      std::vector<Tensor> parts = split_rows(logits, rows);
      for (; resolved < batch.size(); ++resolved) {
        batch[resolved].promise.set_value(std::move(parts[resolved]));
      }
    }
  } catch (...) {
    // Whatever has not been resolved with a value fails with the error —
    // zero drops: every accepted request resolves exactly once.
    for (std::size_t i = resolved; i < batch.size(); ++i) {
      batch[i].promise.set_exception(std::current_exception());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= static_cast<std::int64_t>(batch.size());
    stats_.completed += static_cast<std::int64_t>(resolved);
    stats_.failed += static_cast<std::int64_t>(batch.size() - resolved);
  }
  idle_cv_.notify_all();
}

}  // namespace hero::serve
