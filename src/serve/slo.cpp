#include "serve/slo.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace hero::serve {

namespace {

/// "%.6f" via snprintf: locale-independent fixed-point, so identical
/// reports serialize to identical bytes.
void append_fixed6(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

}  // namespace

const char* slo_histogram_name(SlaClass sla) {
  switch (sla) {
    case SlaClass::kThroughput: return "net.request_us.throughput";
    case SlaClass::kStandard: return "net.request_us.standard";
    case SlaClass::kLatency: return "net.request_us.latency";
  }
  return "net.request_us.standard";
}

SloReport compute_slo(const obs::SnapshotEntry& hist, SlaClass sla,
                      std::int64_t target_p99_us) {
  HERO_CHECK_MSG(target_p99_us > 0, "SLO target must be positive");
  SloReport report;
  report.sla = sla;
  report.target_p99_us = target_p99_us;
  report.count = hist.count;
  // Samples are "within" when their whole bucket is at or under the target
  // (bounds are inclusive upper bounds). A target between bounds therefore
  // rounds DOWN to the last covered bucket — conservative — but the default
  // targets are exact bounds, so nothing is lost there. The +inf bucket is
  // never within.
  for (std::size_t b = 0; b < hist.bounds.size() && b < hist.buckets.size();
       ++b) {
    if (hist.bounds[b] > target_p99_us) break;
    report.within += hist.buckets[b];
  }
  report.p99_us = hist.percentile(99.0);
  if (report.count > 0) {
    report.attainment =
        static_cast<double>(report.within) / static_cast<double>(report.count);
  }
  report.budget_burn = (1.0 - report.attainment) / (1.0 - kSloObjective);
  return report;
}

SloReport compute_slo(const obs::SnapshotEntry& hist, SlaClass sla) {
  return compute_slo(hist, sla, sla_target_p99_us(sla));
}

std::string slo_json(const std::vector<SloReport>& reports) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SloReport& r = reports[i];
    if (i != 0) os << ",";
    os << "{\"class\":\"" << sla_name(r.sla)
       << "\",\"target_p99_us\":" << r.target_p99_us
       << ",\"count\":" << r.count << ",\"within\":" << r.within
       << ",\"p99_us\":" << r.p99_us << ",\"attainment\":";
    append_fixed6(os, r.attainment);
    os << ",\"burn\":";
    append_fixed6(os, r.budget_burn);
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace hero::serve
