// Concurrent request front-end with a dynamic micro-batching scheduler.
//
// submit() enqueues a single-example (or small-batch) request and returns a
// future. A pool of scheduler workers drains the queue per model:
//
//   submit(model, x) ──► FIFO queue ──► worker claims the unclaimed model
//   with the highest SLA priority (FIFO within a tier — serve::select_claim),
//   gathers compatible requests (serve/batch.hpp) until the batch holds
//   max_batch examples OR the head request's effective-delay deadline
//   expires (SLA-scaled max_delay_us, optionally shrunk by the adaptive
//   queue-depth controller), then runs ONE InferenceSession::predict on the
//   coalesced batch (kernels dispatch on the hero::runtime thread pool) and
//   splits the logits back into per-request futures or completions.
//
// Guarantees:
//  * Bit-identity — every response is bit-identical to a direct unbatched
//    predict() of the same features: batch-of-1 requests ARE a direct
//    predict, and multi-request batches rely on the kernels' row
//    independence (pinned end-to-end by tests/serve/serving_parity_test.cpp
//    and bench_serving's exit-1 parity gate).
//  * Zero drops — every accepted submit() resolves, with a value or an
//    exception (unknown model, forward failure). Destruction and shutdown()
//    drain the queue first; hot-swapping a model mid-load retires in-flight
//    batches on the session they acquired.
//  * Per-model ordering — one worker at a time forms AND executes the batch
//    for a given model (the claim is held until the batch resolves), and
//    batches are FIFO prefixes over shape-compatible requests, so
//    same-model requests with the same trailing feature extents complete in
//    submission order. Requests with different trailing extents go into
//    separate batches and carry no ordering guarantee relative to each
//    other; different models batch and execute independently and
//    concurrently.
//
// Backpressure and admission: the queue is bounded (max_queue_rows
// examples). submit() blocks until space frees — what a closed-loop client
// wants. try_submit() REJECTS instead (returns false, counts
// ServerStats::rejected) — what a network front-end wants: open-loop traffic
// does not self-throttle, so when the server saturates the right answer is
// an explicit error frame back to the client, not an unbounded in-process
// pile-up (src/net/server.cpp is the consumer).
//
// SLA classes: set_sla() assigns a model a SlaClass (serve/batch.hpp). A
// free worker claims the highest-priority queued model first and
// latency-class batch heads wait only 1/8 of max_delay_us, so interactive
// models cannot starve behind throughput-class batches. With
// ServerConfig::adaptive_delay the delay ceiling additionally shrinks
// linearly with the queued backlog (adaptive_delay_us): at or beyond one
// full batch of queued rows the scheduler stops waiting entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batch.hpp"
#include "serve/model_store.hpp"
#include "tensor/tensor.hpp"

namespace hero::serve {

struct ServerConfig {
  /// Scheduler worker threads (batch formation + predict dispatch).
  int workers = 2;
  /// Maximum examples coalesced into one predict() call.
  std::int64_t max_batch = 16;
  /// How long the oldest queued request may wait for batch-mates before its
  /// batch executes regardless of fill. 0 = execute as soon as a worker is
  /// free (still coalesces whatever is already queued).
  std::int64_t max_delay_us = 1000;
  /// Queue bound in examples; submit() blocks while the backlog is at the
  /// bound, try_submit() rejects. Must exceed max_batch.
  std::int64_t max_queue_rows = 4096;
  /// Adaptive coalescing-delay controller: scale the delay ceiling down as
  /// the queued backlog grows (serve::adaptive_delay_us). Off by default —
  /// a fixed deadline is easier to reason about for closed-loop benches.
  bool adaptive_delay = false;
};

/// Scheduler counters (snapshot; taken under the queue lock).
struct ServerStats {
  std::int64_t submitted = 0;       ///< accepted submit() calls
  std::int64_t completed = 0;       ///< futures resolved with a value
  std::int64_t failed = 0;          ///< futures resolved with an exception
  std::int64_t batches = 0;         ///< predict() calls issued
  std::int64_t batched_rows = 0;    ///< examples across those batches
  std::int64_t deadline_batches = 0;  ///< batches released by max_delay_us firing
  /// Batches released because waiting could not grow them: at max_batch, or
  /// frozen behind a same-model follower that does not fit.
  std::int64_t full_batches = 0;
  /// Partial batches released without any wait: zero effective delay
  /// (max_delay_us == 0 or the adaptive controller at saturation) or the
  /// shutdown drain.
  std::int64_t flushed_batches = 0;
  /// try_submit() calls turned away because the queue bound was hit — the
  /// admission-control observable: a growing `rejected` under open-loop
  /// load means offered rate exceeds capacity at this queue bound.
  std::int64_t rejected = 0;
  /// High-water marks. Server::stats() fills these from the metrics-registry
  /// gauges "serve.queue.depth_max" / "serve.queue.rows_max" — the registry
  /// is the source of truth; legacy_high_waters() exposes the shadow values
  /// kept under the queue lock for the bench parity audit.
  std::int64_t max_queue_depth = 0;   ///< peak queued requests (high-water)
  std::int64_t max_queued_rows = 0;   ///< peak queued examples (high-water)
  double mean_batch_rows() const {
    return batches > 0 ? static_cast<double>(batched_rows) / static_cast<double>(batches)
                       : 0.0;
  }
};

class Server {
 public:
  /// The store outlives the server; models may be installed/evicted/swapped
  /// while serving.
  Server(ModelStore& store, ServerConfig config);
  explicit Server(ModelStore& store) : Server(store, ServerConfig{}) {}
  /// Drains the queue (every pending future resolves), then joins workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Completion callback for try_submit: exactly one of (logits, error) is
  /// meaningful — error == nullptr on success. Runs on a scheduler worker
  /// thread and MUST NOT throw (a throwing completion would fail the other
  /// requests sharing its batch).
  using Completion = std::function<void(Tensor logits, std::exception_ptr error)>;

  /// Enqueues one request for `model`; features are [n, ...] with n >= 1.
  /// Returns the future logits ([n, classes]). Blocks while the queue is at
  /// max_queue_rows; throws hero::Error after shutdown() or on an empty
  /// batch.
  ///
  /// `trace` scopes the request's spans (queue wait, coalesce, execute,
  /// predict, per-IR-node): the net front-end passes its per-request
  /// context; the default picks up the ambient sink (inert unless a bench
  /// installed one) and a fresh trace id is assigned at admission.
  std::future<Tensor> submit(const std::string& model, const Tensor& features,
                             const obs::SpanContext& trace = obs::SpanContext::ambient())
      HERO_EXCLUDES(mutex_);

  /// Admission-controlled enqueue for front-ends that must not block: when
  /// the queue bound has no room the request is REJECTED — returns false,
  /// counts ServerStats::rejected, and `done` is never invoked. On
  /// admission, `done` fires exactly once from a worker thread with the
  /// logits or the failure. Throws hero::Error after shutdown().
  bool try_submit(const std::string& model, const Tensor& features, Completion done,
                  const obs::SpanContext& trace = obs::SpanContext::ambient())
      HERO_EXCLUDES(mutex_);

  /// Assigns `model` an SLA class consulted for claim priority and delay
  /// sizing (class snapshots are taken per-request at submission). Models
  /// default to SlaClass::kStandard.
  void set_sla(const std::string& model, SlaClass sla) HERO_EXCLUDES(mutex_);
  SlaClass sla(const std::string& model) const HERO_EXCLUDES(mutex_);

  /// Blocks until every request submitted so far has resolved.
  void drain() HERO_EXCLUDES(mutex_);

  /// Stops accepting requests, drains, and joins the workers. Idempotent;
  /// the destructor calls it.
  void shutdown() HERO_EXCLUDES(mutex_);

  ServerStats stats() const HERO_EXCLUDES(mutex_);
  /// The lock-maintained high-water shadows (max_queue_depth,
  /// max_queued_rows) that predate the registry gauges. Kept so the bench
  /// parity audit can assert gauge == legacy bit-for-bit; stats() itself
  /// reads the gauges.
  std::pair<std::int64_t, std::int64_t> legacy_high_waters() const
      HERO_EXCLUDES(mutex_);
  const ServerConfig& config() const { return config_; }
  /// The store this server schedules over — front-ends use it to pre-check
  /// model names (advisory: installs/evictions race with it, and the submit
  /// path stays the authority).
  ModelStore& store() { return store_; }

 private:
  struct Request {
    std::string model;
    Tensor features;
    std::promise<Tensor> promise;  ///< unused when `done` is set
    Completion done;               ///< callback path (network front-end)
    obs::Clock::time_point arrival;
    obs::SpanContext trace;        ///< span scope (inert when tracing is off)
    SlaClass sla = SlaClass::kStandard;  ///< snapshot at submission
  };

  void worker_loop();
  /// Appends an admitted request under mutex_: stamps the SLA snapshot from
  /// sla_ and bumps counters/high-waters.
  void enqueue_locked(Request request, std::int64_t rows) HERO_REQUIRES(mutex_);
  /// Effective coalescing-delay ceiling for a batch headed by `head` given
  /// the current backlog (SLA scaling + optional adaptive controller).
  std::int64_t effective_delay_us_locked(const Request& head) const HERO_REQUIRES(mutex_);
  /// Rebuilds the scheduler's non-owning views of the queue into `pending`
  /// (cheap: pointers + the SLA priority snapshot). The views dangle as soon
  /// as mutex_ is released — they are claim-selection scratch, never stored.
  void rebuild_views_locked(std::vector<PendingView>& pending) const HERO_REQUIRES(mutex_);
  /// Worker wake predicate: stopping, or some unclaimed model is queued.
  bool claimable_or_stopping_locked(std::vector<PendingView>& pending) const
      HERO_REQUIRES(mutex_);
  /// Whether `rows` more examples fit under the queue bound (admission rule
  /// shared by submit's backpressure wait and try_submit's reject).
  bool has_space_locked(std::int64_t rows) const HERO_REQUIRES(mutex_);
  /// Executes one coalesced batch outside the lock; resolves its promises.
  void execute(std::vector<Request> batch) HERO_EXCLUDES(mutex_);

  ModelStore& store_;
  const ServerConfig config_;

  mutable common::Mutex mutex_;
  common::CondVar work_cv_;   // workers: queue grew / stop / unclaim
  common::CondVar space_cv_;  // producers: queue shrank
  common::CondVar idle_cv_;   // drain(): all resolved
  std::unordered_map<std::string, SlaClass> sla_ HERO_GUARDED_BY(mutex_);
  std::deque<Request> queue_ HERO_GUARDED_BY(mutex_);
  std::int64_t queued_rows_ HERO_GUARDED_BY(mutex_) = 0;
  /// Models with a forming batch.
  std::unordered_set<std::string> claimed_ HERO_GUARDED_BY(mutex_);
  /// Requests extracted, not yet resolved.
  std::int64_t in_flight_ HERO_GUARDED_BY(mutex_) = 0;
  bool stopping_ HERO_GUARDED_BY(mutex_) = false;
  ServerStats stats_ HERO_GUARDED_BY(mutex_);

  // Registry instruments (cold-path registered in the constructor, which
  // also RESETS the gauges — single-active-owner semantics: one live Server
  // owns the serve.* gauges, matching how every test and bench runs).
  obs::Gauge* queue_depth_max_ = nullptr;  ///< "serve.queue.depth_max"
  obs::Gauge* queued_rows_max_ = nullptr;  ///< "serve.queue.rows_max"
  obs::Gauge* queue_depth_ = nullptr;      ///< "serve.queue.depth" (live)
  obs::Gauge* queue_rows_ = nullptr;       ///< "serve.queue.rows" (live)
  obs::Histogram* queue_us_ = nullptr;     ///< "serve.queue_us" per request
  obs::Histogram* execute_us_ = nullptr;   ///< "serve.execute_us" per batch
  /// Per-model request counters ("serve.model.<name>.requests"), registered
  /// lazily at first enqueue so hero-top can rate every served model.
  std::unordered_map<std::string, obs::Counter*> model_requests_
      HERO_GUARDED_BY(mutex_);

  std::vector<std::thread> workers_ HERO_GUARDED_BY(mutex_);
};

}  // namespace hero::serve
