// Micro-batch planning and assembly: the pure half of the scheduler.
//
// The Server's workers coalesce queued requests into one predict() call.
// Everything that decides *which* requests join a batch and *how* the batched
// logits map back to per-request responses lives here as plain functions over
// plain data, so the policy is unit-testable without threads:
//
//  * plan_micro_batch — FIFO gather of compatible requests for one model,
//    capped at max_batch total examples (a first request already larger than
//    max_batch is taken alone — bursts are served, not wedged).
//  * coalesce_features / split_rows — concat along dim 0 and the inverse
//    narrow+clone. Row-partitioned kernels (matmul accumulates each output
//    row serially; im2col/BatchNorm-eval are per-example) make row i of a
//    batched forward bit-identical to the same example served alone, which
//    is what lets the scheduler batch at all without changing a single
//    response bit (pinned by tests/serve/serving_parity_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "tensor/tensor.hpp"

namespace hero::serve {

/// Per-model service-level class. The scheduler consults it twice: when a
/// free worker picks which model's batch to form next (priority tiers —
/// select_claim), and when sizing the coalescing delay the batch head may
/// wait (sla_delay_us). A latency-class model's oldest request therefore
/// cannot starve behind a throughput-class batch: the next free worker
/// claims it first, and it waits a fraction of the configured delay.
enum class SlaClass : int {
  kThroughput = 0,  ///< batch-filling bulk traffic; yields workers, full delay
  kStandard = 1,    ///< the default tier
  kLatency = 2,     ///< interactive traffic; claims first, 1/8 of the delay
};

/// Claim priority of an SLA tier (higher claims first).
inline int sla_priority(SlaClass sla) { return static_cast<int>(sla); }

/// Human name ("latency"); parse_sla_class inverts it (throws hero::Error on
/// an unknown spelling) — the spelling bench/server flags use.
const char* sla_name(SlaClass sla);
SlaClass parse_sla_class(const std::string& name);

/// The latency OBJECTIVE of an SLA class: the p99 request latency (µs,
/// client-facing, decode→response) the tier promises. Values are bounds of
/// obs::default_latency_bounds_us() so bucket-resolution attainment checks
/// are exact, and generous enough that a correctly scheduled low-load run
/// attains 1.0 even on noisy CI runners (bench_net_serving exit-1 gates
/// that). The SLO layer (serve/slo.hpp) turns windowed histograms plus this
/// target into attainment and error-budget burn.
std::int64_t sla_target_p99_us(SlaClass sla);

/// Coalescing-delay ceiling for a batch headed by a request of class `sla`:
/// latency-class batches wait at most 1/8 of the configured delay (a fast
/// flush still coalesces whatever already queued), everything else the full
/// ceiling.
std::int64_t sla_delay_us(SlaClass sla, std::int64_t max_delay_us);

/// Adaptive delay controller: scales the delay ceiling down linearly as the
/// total queued backlog approaches one full batch — when queued_rows >=
/// max_batch the backlog IS the next batch and waiting buys nothing, so the
/// effective delay reaches 0; an empty queue earns the full ceiling. Pure,
/// so the control law is testable without threads.
std::int64_t adaptive_delay_us(std::int64_t max_delay_us, std::int64_t queued_rows,
                               std::int64_t max_batch);

/// Non-owning scheduler view of one queued request — two pointers and the
/// request's SLA priority snapshot, so the Server can re-plan on every wake
/// without copying strings or shapes while it holds the queue lock. Pointees
/// must outlive the planning call (the Server rebuilds views under the lock
/// on each pass).
struct PendingView {
  const std::string* model;
  const Shape* shape;  ///< feature shape; dim 0 is the example count
  int priority = sla_priority(SlaClass::kStandard);
  std::int64_t rows() const { return shape->empty() ? 0 : shape->front(); }
};

/// Which queued request should the next free worker claim? The highest
/// SLA-priority tier wins; FIFO (lowest index) breaks ties within a tier;
/// requests whose model is in `claimed` are skipped (another worker is
/// already forming that model's batch). Returns pending.size() when every
/// queued model is claimed.
std::size_t select_claim(const std::vector<PendingView>& pending,
                         const std::unordered_set<std::string>& claimed);

/// Result of one planning pass.
struct MicroBatchPlan {
  std::vector<std::size_t> indices;  ///< ascending positions joining the batch
  std::int64_t rows = 0;             ///< total examples across `indices`
  /// True when the FIFO scan stopped at a same-model, shape-compatible
  /// request that no longer fits. Such a plan can NEVER grow — later
  /// arrivals queue behind the blocker — so the scheduler must release it
  /// immediately instead of idling until the deadline.
  bool blocked = false;
};

/// Plans the next micro-batch for pending[first]'s model:
///  * only requests with the same model AND the same trailing feature
///    extents join (mismatched shapes get their own later batch);
///  * requests join in FIFO order while the total example count stays
///    <= max_batch, stopping at the first compatible request that would
///    overflow (batches are FIFO prefixes per model — no overtaking);
///    pending[first] always joins, even when it alone exceeds max_batch;
///  * requests for other models are skipped, not barriers — they belong to
///    other workers' batches.
MicroBatchPlan plan_micro_batch(const std::vector<PendingView>& pending,
                                std::size_t first, std::int64_t max_batch);

/// Concatenates per-request feature tensors [n_i, ...] into one
/// [sum n_i, ...] batch. A single part is returned as-is (no copy): a
/// batch-of-1 stays the exact tensor the caller submitted.
Tensor coalesce_features(const std::vector<Tensor>& parts);

/// Splits batched logits [sum n_i, ...] back into per-request tensors of
/// `rows[i]` examples each (deep copies, so responses do not pin the batch
/// buffer). Throws when the row counts do not cover the batch exactly.
std::vector<Tensor> split_rows(const Tensor& batched,
                               const std::vector<std::int64_t>& rows);

}  // namespace hero::serve
