#include "serve/batch.hpp"

#include "common/check.hpp"

namespace hero::serve {

namespace {

bool trailing_dims_match(const Shape& a, const Shape& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 1; d < a.size(); ++d) {
    if (a[d] != b[d]) return false;
  }
  return true;
}

}  // namespace

MicroBatchPlan plan_micro_batch(const std::vector<PendingView>& pending,
                                std::size_t first, std::int64_t max_batch) {
  HERO_CHECK_MSG(first < pending.size(),
                 "plan_micro_batch: first=" << first << " out of range (pending "
                                            << pending.size() << ")");
  HERO_CHECK_MSG(max_batch > 0, "plan_micro_batch: max_batch must be positive");
  const PendingView& head = pending[first];
  MicroBatchPlan plan;
  plan.indices.push_back(first);
  plan.rows = head.rows();
  for (std::size_t i = first + 1; i < pending.size() && plan.rows < max_batch; ++i) {
    const PendingView& candidate = pending[i];
    if (*candidate.model != *head.model) continue;
    if (!trailing_dims_match(*candidate.shape, *head.shape)) continue;
    // Stop at the first compatible request that does not fit instead of
    // scanning past it: batches stay a FIFO prefix per model, so no request
    // is ever overtaken by a later one for the same model and shape.
    if (plan.rows + candidate.rows() > max_batch) {
      plan.blocked = true;
      break;
    }
    plan.indices.push_back(i);
    plan.rows += candidate.rows();
  }
  return plan;
}

Tensor coalesce_features(const std::vector<Tensor>& parts) {
  HERO_CHECK_MSG(!parts.empty(), "coalesce_features: no parts");
  if (parts.size() == 1) return parts.front();
  return concat(parts, /*axis=*/0);
}

std::vector<Tensor> split_rows(const Tensor& batched,
                               const std::vector<std::int64_t>& rows) {
  std::int64_t total = 0;
  for (const std::int64_t r : rows) {
    HERO_CHECK_MSG(r > 0, "split_rows: non-positive row count " << r);
    total += r;
  }
  HERO_CHECK_MSG(batched.ndim() >= 1 && batched.dim(0) == total,
                 "split_rows: row counts sum to " << total << " but batch has shape "
                                                  << shape_to_string(batched.shape()));
  std::vector<Tensor> out;
  out.reserve(rows.size());
  std::int64_t start = 0;
  for (const std::int64_t r : rows) {
    out.push_back(batched.narrow(0, start, r).clone());
    start += r;
  }
  return out;
}

}  // namespace hero::serve
