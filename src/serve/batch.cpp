#include "serve/batch.hpp"

#include "common/check.hpp"

namespace hero::serve {

namespace {

bool trailing_dims_match(const Shape& a, const Shape& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 1; d < a.size(); ++d) {
    if (a[d] != b[d]) return false;
  }
  return true;
}

}  // namespace

const char* sla_name(SlaClass sla) {
  switch (sla) {
    case SlaClass::kThroughput: return "throughput";
    case SlaClass::kStandard: return "standard";
    case SlaClass::kLatency: return "latency";
  }
  return "standard";
}

SlaClass parse_sla_class(const std::string& name) {
  if (name == "throughput") return SlaClass::kThroughput;
  if (name == "standard") return SlaClass::kStandard;
  if (name == "latency") return SlaClass::kLatency;
  throw Error("unknown SLA class '" + name +
              "' (accepted: latency, standard, throughput)");
}

std::int64_t sla_target_p99_us(SlaClass sla) {
  // Power-of-two µs values: each is an exact bucket bound of
  // obs::default_latency_bounds_us(), so "within target" is a whole-bucket
  // predicate and attainment is bit-deterministic.
  switch (sla) {
    case SlaClass::kLatency: return std::int64_t{1} << 19;     // ~0.52s
    case SlaClass::kStandard: return std::int64_t{1} << 21;    // ~2.1s
    case SlaClass::kThroughput: return std::int64_t{1} << 23;  // ~8.4s
  }
  return std::int64_t{1} << 21;
}

std::int64_t sla_delay_us(SlaClass sla, std::int64_t max_delay_us) {
  return sla == SlaClass::kLatency ? max_delay_us / 8 : max_delay_us;
}

std::int64_t adaptive_delay_us(std::int64_t max_delay_us, std::int64_t queued_rows,
                               std::int64_t max_batch) {
  HERO_CHECK_MSG(max_batch > 0, "adaptive_delay_us: max_batch must be positive");
  if (queued_rows <= 0) return max_delay_us;
  if (queued_rows >= max_batch) return 0;
  return max_delay_us * (max_batch - queued_rows) / max_batch;
}

std::size_t select_claim(const std::vector<PendingView>& pending,
                         const std::unordered_set<std::string>& claimed) {
  std::size_t best = pending.size();
  int best_priority = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (claimed.find(*pending[i].model) != claimed.end()) continue;
    if (best == pending.size() || pending[i].priority > best_priority) {
      best = i;
      best_priority = pending[i].priority;
    }
  }
  return best;
}

MicroBatchPlan plan_micro_batch(const std::vector<PendingView>& pending,
                                std::size_t first, std::int64_t max_batch) {
  HERO_CHECK_MSG(first < pending.size(),
                 "plan_micro_batch: first=" << first << " out of range (pending "
                                            << pending.size() << ")");
  HERO_CHECK_MSG(max_batch > 0, "plan_micro_batch: max_batch must be positive");
  const PendingView& head = pending[first];
  MicroBatchPlan plan;
  plan.indices.push_back(first);
  plan.rows = head.rows();
  for (std::size_t i = first + 1; i < pending.size() && plan.rows < max_batch; ++i) {
    const PendingView& candidate = pending[i];
    if (*candidate.model != *head.model) continue;
    if (!trailing_dims_match(*candidate.shape, *head.shape)) continue;
    // Stop at the first compatible request that does not fit instead of
    // scanning past it: batches stay a FIFO prefix per model, so no request
    // is ever overtaken by a later one for the same model and shape.
    if (plan.rows + candidate.rows() > max_batch) {
      plan.blocked = true;
      break;
    }
    plan.indices.push_back(i);
    plan.rows += candidate.rows();
  }
  return plan;
}

Tensor coalesce_features(const std::vector<Tensor>& parts) {
  HERO_CHECK_MSG(!parts.empty(), "coalesce_features: no parts");
  if (parts.size() == 1) return parts.front();
  return concat(parts, /*axis=*/0);
}

std::vector<Tensor> split_rows(const Tensor& batched,
                               const std::vector<std::int64_t>& rows) {
  std::int64_t total = 0;
  for (const std::int64_t r : rows) {
    HERO_CHECK_MSG(r > 0, "split_rows: non-positive row count " << r);
    total += r;
  }
  HERO_CHECK_MSG(batched.ndim() >= 1 && batched.dim(0) == total,
                 "split_rows: row counts sum to " << total << " but batch has shape "
                                                  << shape_to_string(batched.shape()));
  std::vector<Tensor> out;
  out.reserve(rows.size());
  std::int64_t start = 0;
  for (const std::int64_t r : rows) {
    out.push_back(batched.narrow(0, start, r).clone());
    start += r;
  }
  return out;
}

}  // namespace hero::serve
