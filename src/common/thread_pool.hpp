// Deterministic thread-pool runtime for the tensor/conv hot-path kernels.
//
// Design points:
//  * One process-wide, fixed-size pool (hero::runtime), created lazily the
//    first time a kernel actually dispatches parallel work. Thread count is
//    HERO_THREADS (or runtime::set_num_threads, wired to --threads by the
//    benches) and defaults to hardware concurrency; 1 forces the legacy
//    serial path — parallel_for then runs inline on the caller.
//  * Determinism: parallel_for partitions an index range into disjoint
//    chunks, and kernels are written so every output element is produced by
//    exactly one chunk in the serial accumulation order. Which thread runs a
//    chunk is scheduling-dependent; what it computes is not, so results are
//    bit-identical for any thread count. Reductions use parallel_reduce_sum,
//    whose chunk boundaries depend only on the range (never on the thread
//    count) and whose partials are combined in chunk order.
//  * No per-call heap allocation: the pool reuses one job slot (the body is
//    passed as a function pointer + context pointer into the caller's
//    stack frame), so bench_step_overhead's alloc_growth=0 audit holds with
//    the pool warm.
//  * Bodies must not throw: kernels here are noexcept arithmetic loops.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sync.hpp"

namespace hero {

/// Fixed-size worker pool with a single reusable job slot. `size()` counts
/// the caller as a participant: a pool of size N spawns N-1 worker threads
/// and the thread calling run() drains chunks alongside them.
class ThreadPool {
 public:
  using RangeFn = void (*)(void* ctx, std::int64_t begin, std::int64_t end);

  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn over [begin, end) split into grain-sized chunks and blocks
  /// until every chunk has run. Chunks are disjoint and cover the range
  /// exactly once. Reuses the pool's job slot — no allocation. fn must not
  /// throw. Calls are serialized; recursive calls from a pool thread are the
  /// caller's responsibility to avoid (runtime::parallel_for handles this).
  void run(std::int64_t begin, std::int64_t end, std::int64_t grain, RangeFn fn, void* ctx);

  /// True on a thread currently executing chunks of a run() job.
  static bool on_pool_thread();

 private:
  void worker_loop();
  void drain();

  // Immutable after construction; worker_loop never touches the vector.
  std::vector<std::thread> workers_;
  common::Mutex run_mutex_;  // serializes concurrent run() callers
  common::Mutex mutex_;
  common::CondVar wake_cv_;
  common::CondVar done_cv_;
  // The reused job slot. NOT guarded_by(mutex_): run() writes these under
  // mutex_ BEFORE bumping epoch_, and workers read them lock-free after
  // observing the epoch change under mutex_ — the mutex release/acquire pair
  // is the happens-before edge, the epoch is the validity token. drain()
  // therefore reads them without annotations.
  RangeFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t chunk_count_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::uint64_t epoch_ HERO_GUARDED_BY(mutex_) = 0;
  std::size_t finished_ HERO_GUARDED_BY(mutex_) = 0;  // workers done with the epoch
  bool stop_ HERO_GUARDED_BY(mutex_) = false;
};

namespace runtime {

/// Current thread budget (>= 1). First call resolves HERO_THREADS, falling
/// back to std::thread::hardware_concurrency().
int num_threads();

/// Sets the thread budget; n <= 0 restores the environment/hardware default.
/// Replaces the pool if the size changes (existing work must have finished).
void set_num_threads(int n);

/// Forces pool construction so later steps pay no thread-spawn allocations
/// (bench_step_overhead calls this before counting).
void warm_up();

/// True when called from inside a parallel_for body; nested parallel_for
/// calls then run inline instead of deadlocking on the single job slot.
bool in_parallel_region();

namespace detail {
ThreadPool& pool();
}  // namespace detail

/// Runs fn(chunk_begin, chunk_end) over disjoint grain-sized chunks of
/// [begin, end). Runs inline (one call, full range) when the range fits one
/// grain, the budget is a single thread, or we are already inside a parallel
/// region — the legacy serial path, bit-identical by construction for
/// kernels that keep per-element accumulation order chunk-local.
template <class F>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, F&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain || in_parallel_region() || num_threads() <= 1) {
    fn(begin, end);
    return;
  }
  using Body = std::remove_reference_t<F>;
  detail::pool().run(
      begin, end, grain,
      [](void* ctx, std::int64_t b, std::int64_t e) { (*static_cast<Body*>(ctx))(b, e); },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

/// Upper bound on reduction chunks; partials live in a stack array.
inline constexpr std::int64_t kMaxReduceChunks = 256;

/// Deterministic parallel sum: fn(chunk_begin, chunk_end) -> double partial.
/// Chunk boundaries depend only on (end - begin, grain) and partials are
/// combined in ascending chunk order, so the result is bit-identical for any
/// thread count (and equals the serial sum whenever the range fits one
/// grain).
template <class F>
double parallel_reduce_sum(std::int64_t begin, std::int64_t end, std::int64_t grain, F&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = std::min((n + grain - 1) / grain, kMaxReduceChunks);
  if (chunks <= 1) return fn(begin, end);
  const std::int64_t chunk_size = (n + chunks - 1) / chunks;
  double partials[kMaxReduceChunks];
  parallel_for(0, chunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const std::int64_t b = begin + c * chunk_size;
      partials[c] = fn(b, std::min(end, b + chunk_size));
    }
  });
  double acc = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) acc += partials[c];
  return acc;
}

}  // namespace runtime
}  // namespace hero
