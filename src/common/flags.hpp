// Tiny command-line / environment flag reader shared by benches and examples.
//
// Benches accept flags of the form --name=value and fall back to environment
// variables HERO_<NAME>; this lets `for b in build/bench/*; do $b; done` run
// with cheap defaults while HERO_BENCH_SCALE=3 scales every experiment up.
// Arguments that are not --key=value are not silently dropped: the
// constructor warns about them on stderr.
#pragma once

#include <cstdint>
#include <string>

namespace hero {

/// Parses flags once from argv; later lookups are by name.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Returns the flag value: --name=value beats HERO_<NAME> beats fallback.
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Parses 1/0, true/false, yes/no, on/off (case-insensitive); throws
  /// hero::Error on any other value.
  bool get_bool(const std::string& name, bool fallback) const;
  /// Parses a duration flag ("500us", "2ms", "1.5s") into microseconds.
  /// A malformed value (including a unitless number) earns a stderr warning
  /// and the fallback — duration knobs tune serving behavior, so a typo'd
  /// unit degrades to the default instead of killing a long bench run.
  std::int64_t get_duration_us(const std::string& name, std::int64_t fallback_us) const;

  /// Global multiplier applied by benches to epochs / dataset sizes.
  /// Controlled by --scale or HERO_BENCH_SCALE; defaults to 1.0.
  double scale() const;

 private:
  std::string args_;  // "\n"-joined "name=value" entries for lookup
};

}  // namespace hero
