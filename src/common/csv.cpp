#include "common/csv.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace hero {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string escaped;
  escaped.reserve(cell.size() + 2);
  escaped += '"';
  for (const char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  HERO_CHECK_MSG(out_.good(), "cannot open CSV file for writing: " << path);
  HERO_CHECK(!header.empty());
  write_line(header);
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  HERO_CHECK_MSG(cells.size() == columns_,
                 "CSV row has " << cells.size() << " cells, expected " << columns_);
  write_line(cells);
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    formatted.push_back(os.str());
  }
  row(formatted);
}

std::string format_pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << (fraction * 100.0) << '%';
  return os.str();
}

}  // namespace hero
