#include "common/csv.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace hero {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  HERO_CHECK_MSG(out_.good(), "cannot open CSV file for writing: " << path);
  HERO_CHECK(!header.empty());
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  HERO_CHECK_MSG(cells.size() == columns_,
                 "CSV row has " << cells.size() << " cells, expected " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    formatted.push_back(os.str());
  }
  row(formatted);
}

std::string format_pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << (fraction * 100.0) << '%';
  return os.str();
}

}  // namespace hero
