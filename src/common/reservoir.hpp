// Bounded deterministic reservoir for latency percentiles.
//
// Serving stats need p50/p95/p99 over an unbounded observation stream with a
// bounded memory footprint. Classic reservoir sampling is randomized, which
// would make repeated runs (and the bit-identity audits built on them) see
// different retained samples. This reservoir is deterministic: it records
// every `stride`-th observation, and whenever the retained buffer reaches
// capacity it decimates — keeps every second retained sample and doubles the
// stride. The retained set is therefore a fixed-phase systematic sample of
// the observation sequence, identical for identical input sequences, and at
// most `capacity` values are ever held.
//
// Percentiles use the nearest-rank method over the retained samples, so with
// fewer than `capacity` observations they are exact order statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hero::common {

class Reservoir {
 public:
  /// `capacity` >= 2 bounds the retained sample count.
  explicit Reservoir(std::size_t capacity = 512);

  /// Observes one value. O(1) amortized; deterministic retention.
  void add(double value);

  /// Folds another reservoir's retained samples into this one — the
  /// aggregation step for per-connection latency reservoirs reporting one
  /// client-side percentile set. Deterministic and order-fixed: both sides
  /// are first decimated to the larger of the two strides (strides are
  /// powers of two, so decimation keeps the fixed-phase property), then the
  /// retained lists are zipped in observation order (this reservoir's k-th
  /// sample before other's k-th), decimating again while at capacity.
  /// `a.merge(b)` and `b.merge(a)` retain the same multiset whenever no
  /// capacity decimation fires during the merge; with decimation the
  /// retained subset depends on the operand order, which is why the order
  /// is part of the contract. count() grows by other.count().
  void merge(const Reservoir& other);

  /// Nearest-rank percentile over the retained samples, p in [0, 100]
  /// (p <= 0 -> minimum, p >= 100 -> maximum). Returns 0.0 when empty.
  double percentile(double p) const;

  /// Total values observed (including ones not retained).
  std::uint64_t count() const { return seen_; }
  /// Values currently retained (<= capacity()).
  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Current systematic-sampling stride (1 until the first decimation).
  std::uint64_t stride() const { return stride_; }
  /// Retained samples in observation order (for tests and JSON dumps).
  const std::vector<double>& samples() const { return samples_; }

  void reset();

 private:
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
  std::vector<double> samples_;
};

}  // namespace hero::common
