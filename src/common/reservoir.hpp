// Bounded deterministic reservoir for latency percentiles.
//
// Serving stats need p50/p95/p99 over an unbounded observation stream with a
// bounded memory footprint. Classic reservoir sampling is randomized, which
// would make repeated runs (and the bit-identity audits built on them) see
// different retained samples. This reservoir is deterministic: it records
// every `stride`-th observation, and whenever the retained buffer reaches
// capacity it decimates — keeps every second retained sample and doubles the
// stride. The retained set is therefore a fixed-phase systematic sample of
// the observation sequence, identical for identical input sequences, and at
// most `capacity` values are ever held.
//
// Percentiles use the nearest-rank method over the retained samples, so with
// fewer than `capacity` observations they are exact order statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hero::common {

class Reservoir {
 public:
  /// `capacity` >= 2 bounds the retained sample count.
  explicit Reservoir(std::size_t capacity = 512);

  /// Observes one value. O(1) amortized; deterministic retention.
  void add(double value);

  /// Nearest-rank percentile over the retained samples, p in [0, 100]
  /// (p <= 0 -> minimum, p >= 100 -> maximum). Returns 0.0 when empty.
  double percentile(double p) const;

  /// Total values observed (including ones not retained).
  std::uint64_t count() const { return seen_; }
  /// Values currently retained (<= capacity()).
  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Current systematic-sampling stride (1 until the first decimation).
  std::uint64_t stride() const { return stride_; }
  /// Retained samples in observation order (for tests and JSON dumps).
  const std::vector<double>& samples() const { return samples_; }

  void reset();

 private:
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
  std::vector<double> samples_;
};

}  // namespace hero::common
