// Minimal JSON reader for tooling that consumes the stack's own telemetry
// (hero-top polling the extended stats payload, tests asserting its schema).
//
// Scope is deliberately narrow: parse a complete, self-contained document
// into an immutable value tree. No writer (producers serialize by hand for
// byte-stability), no streaming, no non-standard extensions. Hostile input
// is a first-class concern — the stats payload crosses a TCP socket — so the
// parser rejects malformed text with hero::Error instead of crashing:
// trailing bytes, unterminated strings/containers, bad escapes, lone
// surrogates, numbers that do not round-trip, and nesting past a fixed depth
// cap all throw.
//
// Objects keep their members in a std::map, so iteration order is sorted by
// key — deterministic output for any tool that re-renders a document.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hero::common {

/// One parsed JSON value. A tagged union in spirit; only the members for the
/// active kind are meaningful (the rest stay default-constructed).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw hero::Error when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  /// as_number() truncated toward zero — counters and percentiles in the
  /// stats payload are integers serialized without a fraction.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup: nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// find() that throws hero::Error when the member is absent.
  const JsonValue& at(const std::string& key) const;

  /// Builders used by the parser (and by tests constructing fixtures).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (any value type at the top level).
/// Throws hero::Error on any deviation from RFC 8259 syntax, on trailing
/// non-whitespace bytes, and on nesting deeper than 64 levels.
JsonValue parse_json(const std::string& text);

}  // namespace hero::common
