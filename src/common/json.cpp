#include "common/json.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/check.hpp"

namespace hero::common {

namespace {

/// Containers nested past this depth are rejected: a hostile payload of
/// 100k '[' characters must not walk the parser off the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    HERO_CHECK_MSG(pos_ == text_.size(),
                   "JSON document carries trailing bytes at offset " << pos_);
    return value;
  }

 private:
  JsonValue parse_value(int depth) {
    HERO_CHECK_MSG(depth < kMaxDepth, "JSON nesting exceeds " << kMaxDepth
                                                              << " levels");
    skip_whitespace();
    HERO_CHECK_MSG(pos_ < text_.size(), "JSON document ends mid-value");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    ++pos_;  // consume '{'
    std::map<std::string, JsonValue> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      HERO_CHECK_MSG(peek() == '"',
                     "JSON object key must be a string at offset " << pos_);
      std::string key = parse_string();
      skip_whitespace();
      HERO_CHECK_MSG(peek() == ':',
                     "JSON object missing ':' at offset " << pos_);
      ++pos_;
      // Duplicate keys: last one wins (matches common decoder behavior; the
      // stack's own serializers never emit duplicates).
      members[std::move(key)] = parse_value(depth + 1);
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      HERO_CHECK_MSG(c == '}', "JSON object not closed at offset " << pos_);
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    ++pos_;  // consume '['
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      HERO_CHECK_MSG(c == ']', "JSON array not closed at offset " << pos_);
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    ++pos_;  // consume '"'
    std::string out;
    for (;;) {
      HERO_CHECK_MSG(pos_ < text_.size(), "JSON string not terminated");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        parse_escape(out);
        continue;
      }
      HERO_CHECK_MSG(c >= 0x20,
                     "JSON string holds an unescaped control byte at offset "
                         << pos_);
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  void parse_escape(std::string& out) {
    ++pos_;  // consume '\'
    HERO_CHECK_MSG(pos_ < text_.size(), "JSON escape cut short");
    const char c = text_[pos_++];
    switch (c) {
      case '"': out.push_back('"'); return;
      case '\\': out.push_back('\\'); return;
      case '/': out.push_back('/'); return;
      case 'b': out.push_back('\b'); return;
      case 'f': out.push_back('\f'); return;
      case 'n': out.push_back('\n'); return;
      case 'r': out.push_back('\r'); return;
      case 't': out.push_back('\t'); return;
      case 'u': {
        std::uint32_t code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
          // High surrogate: the low half must follow immediately.
          HERO_CHECK_MSG(pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                             text_[pos_ + 1] == 'u',
                         "JSON lone high surrogate at offset " << pos_);
          pos_ += 2;
          const std::uint32_t low = parse_hex4();
          HERO_CHECK_MSG(low >= 0xDC00 && low <= 0xDFFF,
                         "JSON invalid surrogate pair at offset " << pos_);
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else {
          HERO_CHECK_MSG(!(code >= 0xDC00 && code <= 0xDFFF),
                         "JSON lone low surrogate at offset " << pos_);
        }
        append_utf8(out, code);
        return;
      }
      default:
        HERO_CHECK_MSG(false, "JSON unknown escape '\\" << c << "' at offset "
                                                        << pos_ - 1);
    }
  }

  std::uint32_t parse_hex4() {
    HERO_CHECK_MSG(pos_ + 4 <= text_.size(), "JSON \\u escape cut short");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        HERO_CHECK_MSG(false, "JSON bad hex digit in \\u escape at offset "
                                  << pos_ - 1);
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    HERO_CHECK_MSG(pos_ < text_.size() && is_digit(text_[pos_]),
                   "JSON malformed number at offset " << start);
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros: "0" may not be followed by a digit
      HERO_CHECK_MSG(pos_ >= text_.size() || !is_digit(text_[pos_]),
                     "JSON number has a leading zero at offset " << start);
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      HERO_CHECK_MSG(pos_ < text_.size() && is_digit(text_[pos_]),
                     "JSON number has a bare decimal point at offset " << start);
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      HERO_CHECK_MSG(pos_ < text_.size() && is_digit(text_[pos_]),
                     "JSON number has an empty exponent at offset " << start);
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    HERO_CHECK_MSG(end == token.c_str() + token.size() && errno != ERANGE,
                   "JSON number '" << token << "' does not parse");
    return JsonValue::make_number(value);
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      HERO_CHECK_MSG(pos_ < text_.size() && text_[pos_] == *p,
                     "JSON malformed literal (expected '" << literal
                                                          << "') at offset "
                                                          << pos_);
      ++pos_;
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  HERO_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  HERO_CHECK_MSG(is_number(), "JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  HERO_CHECK_MSG(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  HERO_CHECK_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  HERO_CHECK_MSG(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  HERO_CHECK_MSG(value != nullptr, "JSON object has no member '" << key << "'");
  return *value;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hero::common
