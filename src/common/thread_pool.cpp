#include "common/thread_pool.hpp"

#include <cstdlib>
#include <memory>

#include "obs/trace.hpp"

namespace hero {

namespace {

thread_local bool tl_in_parallel_region = false;

/// RAII flag for the duration of chunk execution on any participant.
struct ParallelRegionGuard {
  ParallelRegionGuard() { tl_in_parallel_region = true; }
  ~ParallelRegionGuard() { tl_in_parallel_region = false; }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_pool_thread() { return tl_in_parallel_region; }

void ThreadPool::run(std::int64_t begin, std::int64_t end, std::int64_t grain, RangeFn fn,
                     void* ctx) {
  if (begin >= end) return;
  // Caller-side job span over the whole dispatch (submit → last worker
  // check-in), arg = range size. One relaxed load when tracing is off.
  obs::Span job_span(obs::trace_sink(), "pool.job", "runtime", 0, 0, end - begin);
  common::MutexLock run_lock(run_mutex_);
  {
    common::MutexLock lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    begin_ = begin;
    end_ = end;
    grain_ = grain < 1 ? 1 : grain;
    chunk_count_ = (end_ - begin_ + grain_ - 1) / grain_;
    next_chunk_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    ++epoch_;
  }
  wake_cv_.notify_all();
  drain();  // the caller works too
  // Wait for every worker to check in, even ones that found no chunks left:
  // only then may the caller's stack frame (ctx) go out of scope.
  common::UniqueLock lock(mutex_);
  while (finished_ != workers_.size()) done_cv_.wait(lock);
  fn_ = nullptr;
  ctx_ = nullptr;
}

void ThreadPool::drain() {
  ParallelRegionGuard guard;
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunk_count_) return;
    const std::int64_t b = begin_ + c * grain_;
    fn_(ctx_, b, std::min(end_, b + grain_));
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      common::UniqueLock lock(mutex_);
      while (!stop_ && epoch_ == seen) wake_cv_.wait(lock);
      if (stop_) return;
      seen = epoch_;
    }
    drain();
    {
      common::MutexLock lock(mutex_);
      ++finished_;
    }
    done_cv_.notify_one();
  }
}

namespace runtime {

namespace {

common::Mutex g_pool_mutex;
std::atomic<int> g_threads{0};  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool HERO_GUARDED_BY(g_pool_mutex);

int default_threads() {
  if (const char* env = std::getenv("HERO_THREADS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace

int num_threads() {
  int t = g_threads.load(std::memory_order_acquire);
  if (t == 0) {
    common::MutexLock lock(g_pool_mutex);
    t = g_threads.load(std::memory_order_relaxed);
    if (t == 0) {
      t = default_threads();
      g_threads.store(t, std::memory_order_release);
    }
  }
  return t;
}

void set_num_threads(int n) {
  common::MutexLock lock(g_pool_mutex);
  const int resolved = n >= 1 ? n : default_threads();
  if (resolved == g_threads.load(std::memory_order_relaxed) && g_pool) return;
  g_pool.reset();
  g_threads.store(resolved, std::memory_order_release);
}

void warm_up() {
  if (num_threads() > 1) detail::pool();
}

bool in_parallel_region() { return ThreadPool::on_pool_thread(); }

ThreadPool& detail::pool() {
  common::MutexLock lock(g_pool_mutex);
  if (!g_pool) {
    int t = g_threads.load(std::memory_order_relaxed);
    if (t == 0) {
      t = default_threads();
      g_threads.store(t, std::memory_order_release);
    }
    g_pool = std::make_unique<ThreadPool>(t);
  }
  return *g_pool;
}

}  // namespace runtime
}  // namespace hero
