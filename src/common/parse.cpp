#include "common/parse.hpp"

#include <cctype>
#include <limits>
#include <sstream>

namespace hero {

std::optional<bool> parse_bool(const std::string& value) {
  std::string v;
  v.reserve(value.size());
  for (char c : value) v += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string format_float_exact(float value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << value;
  return os.str();
}

}  // namespace hero
