#include "common/parse.hpp"

#include <cctype>
#include <limits>
#include <sstream>

namespace hero {

std::optional<bool> parse_bool(const std::string& value) {
  std::string v;
  v.reserve(value.size());
  for (char c : value) v += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::optional<std::int64_t> parse_duration_us(const std::string& value) {
  // Split "<number><unit>": the longest prefix that parses as a double,
  // then a mandatory us/ms/s suffix (case-insensitive, no spaces).
  std::size_t consumed = 0;
  double magnitude = 0.0;
  try {
    magnitude = std::stod(value, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed == 0 || magnitude < 0.0) return std::nullopt;
  std::string unit;
  for (std::size_t i = consumed; i < value.size(); ++i) {
    unit += static_cast<char>(std::tolower(static_cast<unsigned char>(value[i])));
  }
  double scale = 0.0;
  if (unit == "us") {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1e3;
  } else if (unit == "s") {
    scale = 1e6;
  } else {
    return std::nullopt;  // missing or unknown unit — a bare number is ambiguous
  }
  const double us = magnitude * scale;
  if (us > static_cast<double>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(us + 0.5);
}

std::string format_float_exact(float value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << value;
  return os.str();
}

}  // namespace hero
