// Error-handling helpers shared by every module.
//
// Library code throws hero::Error (a std::runtime_error) on contract
// violations; HERO_CHECK is used for user-facing argument validation and
// stays active in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hero {

/// Exception type thrown by all hero libraries on invalid arguments or
/// broken invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "HERO_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace hero

/// Validates `cond`; on failure throws hero::Error with file/line context.
/// Streams extra context: HERO_CHECK(a == b) << "a=" << a;  is not supported —
/// pass a message via HERO_CHECK_MSG instead to keep the macro exception-safe.
#define HERO_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hero::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
    }                                                                        \
  } while (0)

#define HERO_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream hero_check_os_;                                     \
      hero_check_os_ << msg;                                                 \
      ::hero::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                          hero_check_os_.str());             \
    }                                                                        \
  } while (0)
