// Small shared string-parsing helpers used by flag and config readers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hero {

/// The boolean spellings parse_bool accepts, for error messages.
inline constexpr const char* kBoolSpellings = "1/0, true/false, yes/no, on/off";

/// Parses 1/0, true/false, yes/no, on/off (case-insensitive); nullopt on
/// anything else.
std::optional<bool> parse_bool(const std::string& value);

/// The duration spellings parse_duration_us accepts, for diagnostics.
inline constexpr const char* kDurationSpellings =
    "<number>us, <number>ms, <number>s (e.g. 500us, 2ms, 1.5s)";

/// Parses a duration with an explicit unit suffix — "500us", "2ms", "1s",
/// fractional values allowed ("0.5ms") — into whole microseconds (rounded to
/// nearest). The unit is required: a bare number is ambiguous across knobs
/// whose natural scales differ by 10^6, so it parses as nullopt like any
/// other malformed value. Negative durations are rejected.
std::optional<std::int64_t> parse_duration_us(const std::string& value);

/// Formats a float so that std::stof round-trips to the identical value
/// (max_digits10 precision); used wherever numeric config travels as text.
std::string format_float_exact(float value);

}  // namespace hero
