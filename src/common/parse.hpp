// Small shared string-parsing helpers used by flag and config readers.
#pragma once

#include <optional>
#include <string>

namespace hero {

/// The boolean spellings parse_bool accepts, for error messages.
inline constexpr const char* kBoolSpellings = "1/0, true/false, yes/no, on/off";

/// Parses 1/0, true/false, yes/no, on/off (case-insensitive); nullopt on
/// anything else.
std::optional<bool> parse_bool(const std::string& value);

/// Formats a float so that std::stof round-trips to the identical value
/// (max_digits10 precision); used wherever numeric config travels as text.
std::string format_float_exact(float value);

}  // namespace hero
