#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace hero {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t n) {
  HERO_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint32_t threshold = (~n + 1u) % n;  // == 2^32 mod n
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % n;
  }
}

double Rng::uniform() {
  // 32 bits of mantissa randomness is ample for float32 workloads.
  return static_cast<double>(next_u32()) * 0x1.0p-32;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is nudged away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-32;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_below(static_cast<std::uint32_t>(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split(std::uint64_t tag) {
  // SplitMix64-style mixing of fresh output with the tag yields a child
  // stream decorrelated from the parent and from other tags.
  std::uint64_t z = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  z ^= tag + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z, tag * 2u + 1u);
}

}  // namespace hero
