// Generic "name:key=value,key=value" spec parsing shared by every
// self-registering factory family (training methods, quantizers, quantization
// planners). A registry keeps its own domain vocabulary — the `what` strings
// below feed the error messages — but the grammar, the typed config lookups,
// and the unknown-key validation live here once.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hero {

/// Key→value configuration ("gamma" → "0.2"). String-typed so specs, flags,
/// and environment variables all feed it directly.
using SpecConfig = std::map<std::string, std::string>;

/// A parsed "name:key=value,key=value" spec.
struct ParsedSpec {
  std::string name;
  SpecConfig config;
};

/// Parses "name:key=value,..." (or a bare "name"). `what` names the spec
/// family in error messages ("training-method", "quantizer"). When
/// `allow_bare_keys` is set, a valueless entry such as "per_channel" parses
/// as a boolean flag ("per_channel" → "1"); otherwise it is rejected. Throws
/// hero::Error on malformed entries (empty name/key, duplicate key).
ParsedSpec parse_spec(const std::string& spec, const std::string& what,
                      bool allow_bare_keys = false);

// ---- Typed config lookups used by factories --------------------------------
// `what` prefixes parse-error messages with the spec family ("method config
// key 'h' is not a number" vs the context-free "config key ...").
float spec_float(const SpecConfig& config, const std::string& key, float fallback,
                 const std::string& what = "");
int spec_int(const SpecConfig& config, const std::string& key, int fallback,
             const std::string& what = "");
/// Accepts 1/0, true/false, yes/no, on/off (case-insensitive); throws on
/// anything else.
bool spec_bool(const SpecConfig& config, const std::string& key, bool fallback,
               const std::string& what = "");
std::string spec_str(const SpecConfig& config, const std::string& key,
                     const std::string& fallback);

/// Throws hero::Error naming the offending key when `config` contains a key
/// not in `known`. `owner` describes the consumer, e.g. "training method
/// 'hero'" — factories call this so typos fail loudly.
void check_known_spec_keys(const SpecConfig& config, const std::vector<std::string>& known,
                           const std::string& owner);

/// "a, b, c" — for "registered: ..." error messages.
std::string join_names(const std::vector<std::string>& names);

}  // namespace hero
