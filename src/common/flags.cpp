#include "common/flags.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace hero {

namespace {

std::string to_env_name(const std::string& name) {
  std::string env = "HERO_";
  for (char c : name) {
    env += (c == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return env;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) == 0 && std::strchr(arg, '=') != nullptr) {
      args_ += '\n';
      args_ += (arg + 2);
    } else {
      std::fprintf(stderr, "warning: ignoring argument '%s' (flags must be --key=value)\n",
                   arg);
    }
  }
  args_ += '\n';
}

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  const std::string key = "\n" + name + "=";
  if (const auto pos = args_.find(key); pos != std::string::npos) {
    const auto start = pos + key.size();
    const auto end = args_.find('\n', start);
    return args_.substr(start, end - start);
  }
  if (const char* env = std::getenv(to_env_name(name).c_str()); env != nullptr) {
    return env;
  }
  return fallback;
}

int Flags::get_int(const std::string& name, int fallback) const {
  const std::string v = get(name, "");
  return v.empty() ? fallback : std::atoi(v.c_str());
}

double Flags::get_double(const std::string& name, double fallback) const {
  const std::string v = get(name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const std::string v = get(name, "");
  if (v.empty()) return fallback;
  if (const auto parsed = parse_bool(v)) return *parsed;
  throw Error("flag --" + name + " is not a boolean: '" + v +
              "' (accepted: " + std::string(kBoolSpellings) + ")");
}

std::int64_t Flags::get_duration_us(const std::string& name,
                                    std::int64_t fallback_us) const {
  const std::string v = get(name, "");
  if (v.empty()) return fallback_us;
  if (const auto us = parse_duration_us(v)) return *us;
  std::fprintf(stderr,
               "warning: flag --%s has a malformed duration '%s' (accepted: %s); "
               "using %lld us\n",
               name.c_str(), v.c_str(), kDurationSpellings,
               static_cast<long long>(fallback_us));
  return fallback_us;
}

double Flags::scale() const { return get_double("scale", get_double("bench-scale", 1.0)); }

}  // namespace hero
