// Minimal CSV emission used by benches and examples to dump series that the
// paper plots (quantization sweeps, Hessian-norm histories, loss contours).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hero {

/// RFC-4180 cell escaping: cells containing a comma, double quote, CR, or LF
/// are wrapped in double quotes with embedded quotes doubled; anything else
/// passes through verbatim.
std::string csv_escape(const std::string& cell);

/// Streams rows into a CSV file. Writes the header on construction and
/// flushes on destruction. Throws hero::Error if the file cannot be opened.
/// Header and row cells are escaped with csv_escape, so labels containing
/// commas or quotes cannot corrupt the row structure.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the column count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  void row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  void write_line(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a double for table display, e.g. format_pct(0.9344) == "93.44%".
std::string format_pct(double fraction, int decimals = 2);

}  // namespace hero
