// Annotated synchronization primitives for the concurrent subsystems.
//
// libstdc++'s std::mutex / std::lock_guard carry no Clang capability
// attributes, so Clang's -Wthread-safety analysis cannot see through them.
// These zero-overhead wrappers restore visibility:
//
//   common::Mutex       std::mutex as a HERO_CAPABILITY — HERO_GUARDED_BY
//                       members and HERO_REQUIRES helpers can name it.
//   common::MutexLock   std::lock_guard equivalent (scoped, non-movable).
//   common::UniqueLock  std::unique_lock equivalent: relockable mid-scope
//                       (lock()/unlock() re-annotate the capability state)
//                       and the handle common::CondVar waits on.
//   common::CondVar     std::condition_variable over UniqueLock. Waits are
//                       intentionally predicate-free: a lambda predicate is a
//                       separate function body to the analysis, which loses
//                       the capability context — callers write
//                       `while (!ready_locked()) cv.wait(lock);` with the
//                       predicate as a HERO_REQUIRES member instead.
//
// Everything inlines to the std primitive it wraps; g++ builds compile the
// identical synchronization with the annotations erased.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace hero::common {

/// std::mutex annotated as a Clang capability.
class HERO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HERO_ACQUIRE() { mutex_.lock(); }
  void unlock() HERO_RELEASE() { mutex_.unlock(); }
  bool try_lock() HERO_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped mutex, for interop that stays inside this header (CondVar,
  /// UniqueLock). Annotated code should never need it directly.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock for the full scope — std::lock_guard with the scoped-capability
/// annotation so guarded accesses inside the scope check out.
class HERO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HERO_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() HERO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Relockable RAII lock — std::unique_lock with scoped-capability
/// annotations. Construction acquires; lock()/unlock() move the capability
/// in and out mid-scope (the serve::Server worker loop drops the queue lock
/// around a forward pass); destruction releases if held.
class HERO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) HERO_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~UniqueLock() HERO_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() HERO_ACQUIRE() { lock_.lock(); }
  void unlock() HERO_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// For CondVar only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over UniqueLock. wait() releases and reacquires the
/// lock internally; to the thread-safety analysis the capability is held
/// throughout, which is exactly the invariant the caller's code observes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Clock, class Duration>
  std::cv_status wait_until(UniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.native(), timeout);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hero::common
