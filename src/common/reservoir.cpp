#include "common/reservoir.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hero::common {

Reservoir::Reservoir(std::size_t capacity) : capacity_(capacity) {
  HERO_CHECK_MSG(capacity >= 2, "Reservoir capacity must be >= 2, got " << capacity);
  samples_.reserve(capacity_);
}

void Reservoir::add(double value) {
  // Systematic sampling: observation indices 0, stride, 2*stride, ... are
  // retained. Keeping phase 0 means the retained set after a decimation is
  // exactly what this reservoir would have retained had it started with the
  // doubled stride, so the policy is self-consistent as well as
  // deterministic.
  if (seen_ % stride_ == 0) {
    samples_.push_back(value);
    // >= rather than ==: merge's degenerate case (capacity 2, both operands
    // already down to one sample) can leave the list exactly at capacity.
    if (samples_.size() >= capacity_) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[kept++] = samples_[i];
      samples_.resize(kept);
      stride_ *= 2;
    }
  }
  ++seen_;
}

namespace {

/// Keeps every `ratio`-th sample starting at phase 0. `ratio` is a power of
/// two (stride quotients always are), so this reproduces exactly what the
/// reservoir would have retained at the coarser stride.
void decimate_to(std::vector<double>& samples, std::uint64_t ratio) {
  if (ratio <= 1) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < samples.size(); i += static_cast<std::size_t>(ratio)) {
    samples[kept++] = samples[i];
  }
  samples.resize(kept);
}

}  // namespace

void Reservoir::merge(const Reservoir& other) {
  if (other.samples_.empty()) {
    seen_ += other.seen_;
    return;
  }
  std::uint64_t stride = std::max(stride_, other.stride_);
  decimate_to(samples_, stride / stride_);
  std::vector<double> theirs = other.samples_;
  decimate_to(theirs, stride / other.stride_);
  // Rebound BEFORE zipping, halving each stream separately: the zipped list
  // has one operand at even positions and the other at odd, so a phase-0
  // decimation of the zipped list would keep only even positions — i.e.
  // drop the merged-in operand entirely and bias every later percentile.
  while (samples_.size() + theirs.size() >= capacity_ &&
         (samples_.size() > 1 || theirs.size() > 1)) {
    decimate_to(samples_, 2);
    decimate_to(theirs, 2);
    stride *= 2;
  }
  stride_ = stride;
  // Zip in observation order: sample k of either side stands for observation
  // k*stride of its stream, so interleaving keeps the merged list ordered by
  // (observation index, operand) — a fixed order, hence a fixed retained set.
  std::vector<double> merged;
  merged.reserve(samples_.size() + theirs.size());
  const std::size_t common = std::min(samples_.size(), theirs.size());
  for (std::size_t k = 0; k < common; ++k) {
    merged.push_back(samples_[k]);
    merged.push_back(theirs[k]);
  }
  for (std::size_t k = common; k < samples_.size(); ++k) merged.push_back(samples_[k]);
  for (std::size_t k = common; k < theirs.size(); ++k) merged.push_back(theirs[k]);
  samples_ = std::move(merged);
  seen_ += other.seen_;
}

double Reservoir::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: smallest value with at least p% of samples <= it.
  const double rank = std::ceil(clamped / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index =
      rank < 1.0 ? 0 : std::min(sorted.size() - 1, static_cast<std::size_t>(rank) - 1);
  return sorted[index];
}

void Reservoir::reset() {
  samples_.clear();
  stride_ = 1;
  seen_ = 0;
}

}  // namespace hero::common
