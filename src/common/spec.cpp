#include "common/spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace hero {

ParsedSpec parse_spec(const std::string& spec, const std::string& what, bool allow_bare_keys) {
  HERO_CHECK_MSG(!spec.empty(), "empty " << what << " spec");
  ParsedSpec parsed;
  const auto colon = spec.find(':');
  parsed.name = spec.substr(0, colon);
  HERO_CHECK_MSG(!parsed.name.empty(), what << " spec has no name: '" << spec << "'");
  if (colon == std::string::npos) return parsed;

  std::string entry;
  std::istringstream rest(spec.substr(colon + 1));
  while (std::getline(rest, entry, ',')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    std::string key;
    std::string value;
    if (eq == std::string::npos && allow_bare_keys) {
      key = entry;  // bare flag: "per_channel" means "per_channel=1"
      value = "1";
    } else {
      HERO_CHECK_MSG(eq != std::string::npos && eq > 0,
                     what << " config entry is not key=value: '" << entry << "' in '" << spec
                          << "'");
      key = entry.substr(0, eq);
      value = entry.substr(eq + 1);
    }
    HERO_CHECK_MSG(parsed.config.find(key) == parsed.config.end(),
                   "duplicate " << what << " config key '" << key << "' in '" << spec << "'");
    parsed.config[key] = value;
  }
  return parsed;
}

namespace {

std::string key_label(const std::string& what, const std::string& key) {
  return (what.empty() ? "" : what + " ") + "config key '" + key + "'";
}

}  // namespace

float spec_float(const SpecConfig& config, const std::string& key, float fallback,
                 const std::string& what) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  try {
    std::size_t used = 0;
    const float value = std::stof(it->second, &used);
    HERO_CHECK_MSG(used == it->second.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    throw Error(key_label(what, key) + " is not a number: '" + it->second + "'");
  }
}

int spec_int(const SpecConfig& config, const std::string& key, int fallback,
             const std::string& what) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  try {
    std::size_t used = 0;
    const int value = std::stoi(it->second, &used);
    HERO_CHECK_MSG(used == it->second.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    throw Error(key_label(what, key) + " is not an integer: '" + it->second + "'");
  }
}

bool spec_bool(const SpecConfig& config, const std::string& key, bool fallback,
               const std::string& what) {
  const auto it = config.find(key);
  if (it == config.end()) return fallback;
  if (const auto parsed = parse_bool(it->second)) return *parsed;
  throw Error(key_label(what, key) + " is not a boolean: '" + it->second +
              "' (accepted: " + std::string(kBoolSpellings) + ")");
}

std::string spec_str(const SpecConfig& config, const std::string& key,
                     const std::string& fallback) {
  const auto it = config.find(key);
  return it == config.end() ? fallback : it->second;
}

void check_known_spec_keys(const SpecConfig& config, const std::vector<std::string>& known,
                           const std::string& owner) {
  for (const auto& [key, value] : config) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      const std::string accepted =
          known.empty() ? "takes no config keys" : "accepted: " + join_names(known);
      throw Error("unknown config key '" + key + "' for " + owner + " (" + accepted + ")");
    }
  }
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace hero
