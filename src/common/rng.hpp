// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// shuffling, label noise, Hutchinson probes, contour directions) flows
// through hero::Rng so every experiment is reproducible from a single seed.
// The generator is PCG32 (O'Neill 2014): tiny state, excellent statistical
// quality, and identical output on every platform — unlike std::mt19937
// paired with distribution objects, whose output is implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

namespace hero {

/// Deterministic, platform-stable PRNG (PCG32-XSH-RR) with convenience
/// samplers. Copyable; a copy continues the same stream independently.
class Rng {
 public:
  /// Seeds the generator. Distinct (seed, stream) pairs give independent
  /// sequences; the default stream suffices for most uses.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32 random bits.
  std::uint32_t next_u32();

  /// Uniform in [0, n). Requires n > 0. Uses rejection sampling: unbiased.
  std::uint32_t next_below(std::uint32_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives a child generator; children of distinct tags are independent.
  Rng split(std::uint64_t tag);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hero
