// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The repo's core guarantee — bit-identical results at any thread count —
// rests on a lock discipline that runtime tests and TSan can only check on
// exercised interleavings. These macros make the discipline COMPILE-TIME
// checkable: the clang CI job builds with -Werror=thread-safety, so a method
// that touches guarded state without holding its mutex, or re-acquires a
// lock it already holds, fails the build rather than a lucky test run.
//
// Usage pattern (see common/sync.hpp for the annotated primitives):
//
//   common::Mutex mutex_;
//   std::int64_t queued_ HERO_GUARDED_BY(mutex_);
//   void enqueue_locked(Request r) HERO_REQUIRES(mutex_);  // private helper
//   void submit(Request r) HERO_EXCLUDES(mutex_);          // public wrapper
//
// Public methods lock (typically via common::MutexLock) and delegate to
// private *_locked() helpers annotated with HERO_REQUIRES; the analysis then
// proves every access to a HERO_GUARDED_BY member happens under its lock.
//
// The macros expand to Clang capability attributes under __clang__ and to
// nothing elsewhere, so g++ builds are unaffected.
#pragma once

#if defined(__clang__)
#define HERO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HERO_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability (lockable): common::Mutex.
#define HERO_CAPABILITY(x) HERO_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor: common::MutexLock / common::UniqueLock.
#define HERO_SCOPED_CAPABILITY HERO_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define HERO_GUARDED_BY(x) HERO_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE is guarded by the given mutex.
#define HERO_PT_GUARDED_BY(x) HERO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called while holding the given mutex(es); the
/// convention for private *_locked() helpers.
#define HERO_REQUIRES(...) HERO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the given mutex(es) and returns holding them.
#define HERO_ACQUIRE(...) HERO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es).
#define HERO_RELEASE(...) HERO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the mutex when it returns the given value.
#define HERO_TRY_ACQUIRE(...) HERO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the given mutex(es); put
/// this on public locking wrappers to catch self-deadlocking re-entry.
#define HERO_EXCLUDES(...) HERO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function whose return value is protected by the given mutex.
#define HERO_RETURN_CAPABILITY(x) HERO_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for code whose safety argument the analysis cannot express
/// (e.g. the thread pool's epoch-protocol job slot). Use sparingly; every
/// use should carry a comment explaining the actual synchronization.
#define HERO_NO_THREAD_SAFETY_ANALYSIS HERO_THREAD_ANNOTATION_(no_thread_safety_analysis)
