// Umbrella header: the full public API of the HERO library.
//
//   #include "hero.hpp"
//
// pulls in the tensor/autograd substrate, the NN layer and model zoo, the
// synthetic data benchmarks, the quantizer, the Hessian toolbox, and the
// Session API v1 for training. Link against the hero_all target.
//
// The Session API is three pieces (see README.md for a walkthrough):
//  * optim::StepContext / StepResult (optim/step.hpp) — the per-step
//    contract: model + batch + reused gradient buffers in, loss + gradient
//    norm + regularizer + perturbation norm out.
//  * optim::MethodRegistry (optim/registry.hpp) — self-registering method
//    factories; build any training rule from "name:key=value,..." specs
//    such as "hero:gamma=0.2,h=0.01".
//  * core::Trainer (core/trainer.hpp) — owns optimizer + schedule, drives
//    TrainingMethod::step, and exposes on_step / on_epoch_end hooks with
//    stock callbacks for the paper's Figure 2 diagnostics.
#pragma once

#include "autograd/functional.hpp"
#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "core/experiments.hpp"
#include "core/hero.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "hessian/hvp.hpp"
#include "hessian/landscape.hpp"
#include "hessian/spectral.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/module.hpp"
#include "optim/methods.hpp"
#include "optim/registry.hpp"
#include "optim/schedule.hpp"
#include "optim/step.hpp"
#include "optim/sgd.hpp"
#include "quant/quantize.hpp"
#include "tensor/conv_ops.hpp"
#include "tensor/io.hpp"
#include "tensor/tensor.hpp"
