// Umbrella header: the full public API of the HERO library.
//
//   #include "hero.hpp"
//
// pulls in the tensor/autograd substrate, the NN layer and model zoo, the
// synthetic data benchmarks, the quantizer, the Hessian toolbox, the
// baseline optimizers, and HERO itself. Link against the hero_all target.
#pragma once

#include "autograd/functional.hpp"
#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/experiments.hpp"
#include "core/hero.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "hessian/hvp.hpp"
#include "hessian/landscape.hpp"
#include "hessian/spectral.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/module.hpp"
#include "optim/methods.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "quant/quantize.hpp"
#include "tensor/conv_ops.hpp"
#include "tensor/io.hpp"
#include "tensor/tensor.hpp"
