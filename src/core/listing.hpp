// One-stop discoverability: a human-readable listing of every
// self-registering factory family — training methods, quantizers,
// quantization planners, and model architectures — with the config keys
// each accepts and (where available) its describe() string.
//
// Shared by the benches' --list flag (bench/bench_common.hpp) and
// `edge_deployment --help`, so there is exactly one place that knows how to
// render "what can this binary be asked to build?".
#pragma once

#include <string>

namespace hero::core {

/// The full multi-line registry listing (trailing newline included).
std::string describe_registries();

}  // namespace hero::core
