// Shared experiment plumbing for the paper-reproduction benches: method
// factory with the paper's hyperparameters (§5.1), dataset registry, and a
// quantization sweep helper used by Figure 1 / Table 3.
#pragma once

#include <memory>
#include <string>

#include "core/trainer.hpp"
#include "quant/quantize.hpp"

namespace hero::core {

/// Method hyperparameters. The paper (§5.1) uses h = 0.5 on CIFAR-10 and
/// 1.0 elsewhere for full-scale networks; because the Eq. 15 probe scales
/// with ‖W_i‖, the equivalent *relative* perturbation for our micro-scale
/// models calibrates to h ≈ 0.01–0.02 (the paper's 1:2 dataset ratio is
/// preserved by default_h below; calibration sweep recorded in
/// EXPERIMENTS.md). γ and λ come from the same small grid searches the
/// paper describes.
struct MethodParams {
  float h = 0.01f;
  float gamma = 0.1f;
  float lambda = 0.01f;  ///< GRAD L1 strength
  HvpMode hvp_mode = HvpMode::kExact;
};

/// Builds a training method by name: "hero", "sgd", "grad_l1",
/// "first_order" (the SAM-style Table 3 ablation).
std::unique_ptr<optim::TrainingMethod> make_method(const std::string& name,
                                                   const MethodParams& params);

/// Default perturbation step per dataset, following §5.1.
float default_h(const std::string& dataset_name);

/// One row of a post-training quantization sweep (Figure 1 / Table 3).
struct QuantPoint {
  int bits = 0;  ///< 0 denotes full precision
  double accuracy = 0.0;
};

/// Evaluates post-training weight quantization at each precision (no
/// finetuning, per §5.3); restores full-precision weights afterwards.
std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<int>& bits,
                                           const quant::QuantConfig& base = {});

}  // namespace hero::core
