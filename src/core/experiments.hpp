// Shared experiment plumbing for the paper-reproduction benches: the
// dataset-calibrated perturbation default (§5.1) and the quantization sweep
// helpers used by Figure 1 / Table 3.
//
// Training methods are built through the MethodRegistry
// (optim/registry.hpp) and quantization through the Quantizer/planner
// registries (quant/quantizer.hpp, quant/planner.hpp) — both sides of a
// sweep are spec strings now, so scheme- and precision-diverse runs need no
// recompile.
#pragma once

#include <string>
#include <vector>

#include "core/hero.hpp"
#include "core/trainer.hpp"
#include "quant/planner.hpp"
#include "quant/quantize.hpp"

namespace hero::core {

/// Default perturbation step per dataset, following §5.1. The paper uses
/// h = 0.5 on CIFAR-10 and 1.0 elsewhere for full-scale networks; because
/// the Eq. 15 probe scales with ‖W_i‖, the equivalent *relative*
/// perturbation for our micro-scale models calibrates to h ≈ 0.01–0.02,
/// preserving the paper's 1:2 dataset ratio (calibration sweep recorded in
/// EXPERIMENTS.md).
float default_h(const std::string& dataset_name);

/// One row of a post-training quantization sweep (Figure 1 / Table 3).
struct QuantPoint {
  int bits = 0;           ///< nominal precision; 0 denotes full precision
  double accuracy = 0.0;
  double avg_bits = 0.0;  ///< numel-weighted plan average (== bits when uniform)
  std::string label;      ///< the spec that produced this point
};

/// Evaluates post-training weight quantization at each precision (no
/// finetuning, per §5.3) under the uniform quantizer spelled by
/// `quantizer` — a bits-free spec such as "sym", "asym" or
/// "sym:per_channel". Restores full-precision weights afterwards and
/// appends a bits=0 full-precision point.
std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<int>& bits,
                                           const std::string& quantizer = "sym");

/// Evaluates a single planner spec ("uniform:sym:bits=4", "hawq:budget=5");
/// `ctx.calib` must point at training data for Hessian-aware planners.
/// Restores full-precision weights afterwards.
QuantPoint evaluate_planned(nn::Module& model, const data::Dataset& test,
                            const std::string& planner,
                            const quant::PlannerContext& ctx = {});

/// Planner-spec sweep: one evaluate_planned point per planner, enabling
/// mixed-precision rows next to uniform ones. Appends a bits=0
/// full-precision point.
std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<std::string>& planners,
                                           const quant::PlannerContext& ctx = {});

}  // namespace hero::core
