// Shared experiment plumbing for the paper-reproduction benches: the
// dataset-calibrated perturbation default (§5.1) and a quantization sweep
// helper used by Figure 1 / Table 3.
//
// Training methods are built through the MethodRegistry
// (optim/registry.hpp); the old make_method switch is gone.
#pragma once

#include <string>
#include <vector>

#include "core/hero.hpp"
#include "core/trainer.hpp"
#include "quant/quantize.hpp"

namespace hero::core {

/// Default perturbation step per dataset, following §5.1. The paper uses
/// h = 0.5 on CIFAR-10 and 1.0 elsewhere for full-scale networks; because
/// the Eq. 15 probe scales with ‖W_i‖, the equivalent *relative*
/// perturbation for our micro-scale models calibrates to h ≈ 0.01–0.02,
/// preserving the paper's 1:2 dataset ratio (calibration sweep recorded in
/// EXPERIMENTS.md).
float default_h(const std::string& dataset_name);

/// One row of a post-training quantization sweep (Figure 1 / Table 3).
struct QuantPoint {
  int bits = 0;  ///< 0 denotes full precision
  double accuracy = 0.0;
};

/// Evaluates post-training weight quantization at each precision (no
/// finetuning, per §5.3); restores full-precision weights afterwards.
std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<int>& bits,
                                           const quant::QuantConfig& base = {});

}  // namespace hero::core
