// Session API v1: the Trainer — epochs, cosine schedule, metrics history,
// and user hooks.
//
// Trainer owns the optimizer and LR schedule, drives the TrainingMethod
// through a single reused StepContext (so per-step buffers amortize across
// the whole run), and exposes two callback points:
//   on_step(hook)       after every optimizer step (StepEvent)
//   on_epoch_end(hook)  after each epoch's evaluation (EpochEvent; hooks may
//                       fill extra EpochRecord fields)
// The diagnostics that used to hide behind TrainerConfig flags are stock
// callbacks now: record_hessian_norm() computes Figure 2's ‖Hz‖ per epoch,
// track_generalization_gap() accumulates the per-epoch train−test gap.
//
//   Trainer trainer(model, method, config);
//   trainer.on_epoch_end(record_hessian_norm(256, 0.5f));
//   TrainResult result = trainer.fit(train, test);
#pragma once

#include <functional>
#include <memory>

#include "core/hero.hpp"
#include "data/synthetic.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"

namespace hero::core {

struct TrainerConfig {
  int epochs = 30;
  std::int64_t batch_size = 128;
  float base_lr = 0.1f;       ///< paper §5.1: cosine schedule from 0.1
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  bool cosine_lr = true;
  bool augment = false;       ///< random shift+flip on image batches
  std::int64_t augment_max_shift = 1;
  std::uint64_t seed = 0;     ///< loader shuffle / augmentation / method RNG seed
  bool verbose = false;       ///< per-epoch stdout summary
};

struct EpochRecord {
  int epoch = 0;
  float lr = 0.0f;
  double train_loss = 0.0;    ///< mean batch loss over the epoch
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double generalization_gap = 0.0;  ///< train_accuracy − test_accuracy
  double hessian_norm = 0.0;  ///< ‖Hz‖, filled by the record_hessian_norm hook
};

struct TrainResult {
  std::vector<EpochRecord> history;
  double final_train_accuracy = 0.0;
  double final_test_accuracy = 0.0;

  const EpochRecord& last() const { return history.back(); }
};

/// Passed to on_step hooks after each optimizer update.
struct StepEvent {
  std::int64_t step = 0;  ///< global step index across epochs
  int epoch = 0;
  float lr = 0.0f;
  const optim::StepResult& result;  ///< loss + diagnostics from the method
  nn::Module& model;
};

/// Passed to on_epoch_end hooks after the epoch's train/test evaluation.
/// Hooks may write additional fields into `record` (it is pushed onto the
/// history after all hooks ran).
struct EpochEvent {
  EpochRecord& record;
  nn::Module& model;
  const data::Dataset& train;
  const data::Dataset& test;
};

class Trainer {
 public:
  using StepHook = std::function<void(const StepEvent&)>;
  using EpochHook = std::function<void(const EpochEvent&)>;

  /// Binds the model and method; both must outlive the Trainer.
  Trainer(nn::Module& model, optim::TrainingMethod& method, TrainerConfig config = {});

  /// Registers a hook; chainable (trainer.on_step(a).on_epoch_end(b)).
  Trainer& on_step(StepHook hook);
  Trainer& on_epoch_end(EpochHook hook);

  /// Trains for config.epochs, evaluating on `test` each epoch.
  TrainResult fit(const data::Dataset& train, const data::Dataset& test);

  nn::Module& model() { return *model_; }
  optim::TrainingMethod& method() { return *method_; }
  const TrainerConfig& config() const { return config_; }

 private:
  nn::Module* model_;
  optim::TrainingMethod* method_;
  TrainerConfig config_;
  std::vector<StepHook> step_hooks_;
  std::vector<EpochHook> epoch_hooks_;
};

// ---- Stock callbacks -------------------------------------------------------

/// on_epoch_end hook filling EpochRecord::hessian_norm with ‖Hz‖ along the
/// Eq. 15 probe on a training-sample batch (the Figure 2 metric).
Trainer::EpochHook record_hessian_norm(std::int64_t sample = 256, float probe_h = 0.5f);

/// on_epoch_end hook appending each epoch's generalization gap to *out
/// (Figure 2(b) series). `out` must outlive the fit() call.
Trainer::EpochHook track_generalization_gap(std::vector<double>* out);

/// ‖Hz‖ diagnostic on a training-sample batch (Figure 2 metric). Runs the
/// model in train mode with frozen BatchNorm statistics.
double measure_hessian_norm(nn::Module& model, const data::Dataset& train,
                            std::int64_t sample, float probe_h);

}  // namespace hero::core
