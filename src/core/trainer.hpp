// Training harness: epochs, cosine schedule, metrics history, and the
// diagnostics Figure 2 plots (‖Hz‖ and the generalization gap per epoch).
#pragma once

#include <memory>

#include "core/hero.hpp"
#include "data/synthetic.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"

namespace hero::core {

struct TrainerConfig {
  int epochs = 30;
  std::int64_t batch_size = 128;
  float base_lr = 0.1f;       ///< paper §5.1: cosine schedule from 0.1
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  bool cosine_lr = true;
  bool augment = false;       ///< random shift+flip on image batches
  std::int64_t augment_max_shift = 1;
  std::uint64_t seed = 0;     ///< loader shuffle / augmentation seed
  bool record_hessian = false;  ///< compute ‖Hz‖ each epoch (Figure 2)
  float hessian_probe_h = 0.5f;
  std::int64_t hessian_sample = 256;  ///< training samples used for ‖Hz‖
  bool verbose = false;
};

struct EpochRecord {
  int epoch = 0;
  float lr = 0.0f;
  double train_loss = 0.0;    ///< mean batch loss over the epoch
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double generalization_gap = 0.0;  ///< train_accuracy − test_accuracy
  double hessian_norm = 0.0;  ///< ‖Hz‖ along the Eq. 15 probe, if recorded
};

struct TrainResult {
  std::vector<EpochRecord> history;
  double final_train_accuracy = 0.0;
  double final_test_accuracy = 0.0;

  const EpochRecord& last() const { return history.back(); }
};

/// Trains `model` with `method` on `train`, evaluating on `test` each epoch.
TrainResult train(nn::Module& model, optim::TrainingMethod& method,
                  const data::Dataset& train, const data::Dataset& test,
                  const TrainerConfig& config);

/// ‖Hz‖ diagnostic on a training-sample batch (Figure 2 metric). Runs the
/// model in train mode with frozen BatchNorm statistics.
double measure_hessian_norm(nn::Module& model, const data::Dataset& train,
                            std::int64_t sample, float probe_h);

}  // namespace hero::core
