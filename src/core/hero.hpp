// HERO: Hessian-Enhanced Robust Optimization (the paper's contribution).
//
// Implements Algorithm 1 exactly:
//   1. g_i   = ∇L_B(W_i)                                  (clean gradient)
//   2. z_i   = ‖W_i‖₂ · g_i / ‖g_i‖₂                      (Eq. 15 probe)
//   3. W*_i  = W_i + h·z_i                                (perturbation)
//   4. G     = Σ_i ‖∇L_B(W*_i) − g_i‖₂                    (Alg. 1 line 10)
//   5. ∇W_i  = ∇L_B(W*_i) + γ·∇_{W*}G                     (Eq. 17; the α·W
//      weight-decay term is applied by the shared Sgd optimizer)
// The regularizer gradient ∇_{W*}G is a Hessian-vector product; the default
// computes it exactly via double backprop (Eq. 16's approximation of dropping
// ∇z is matched by differentiating with respect to W* only). A
// finite-difference fallback reproduces the same quantity without a second
// graph, for the ablation bench.
//
// The per-step regularizer value G is reported through StepResult::regularizer
// (with ‖h·z‖ in StepResult::perturbation_norm); HERO registers itself as
// "hero" with the MethodRegistry, accepting the config keys
//   h, gamma, hvp (exact|fd), reg_norm (l2|l2_squared), perturb_all, fd_eps
// so benches can spell --method=hero:gamma=0.2,h=0.01.
#pragma once

#include "optim/methods.hpp"

namespace hero::core {

enum class HvpMode {
  kExact,       ///< double backprop through the gradient graph
  kFiniteDiff,  ///< extra first-order pass: H·u ≈ (∇L(W*+εu) − ∇L(W*))/ε
};

enum class RegNorm {
  kL2,         ///< G = Σ_i ‖Δg_i‖₂ (Algorithm 1 as printed)
  kL2Squared,  ///< G = Σ_i ‖Δg_i‖₂² (Eq. 13 form; gradient is 2·H·Δg)
};

struct HeroConfig {
  /// Perturbation step. The probe z_i has norm ‖W_i‖ (Eq. 15), so h is a
  /// *relative* step; the paper uses 0.5/1.0 for full-scale networks, which
  /// calibrates to ~0.01-0.02 for this repository's micro-scale models (see
  /// core::default_h and EXPERIMENTS.md).
  float h = 0.01f;
  float gamma = 0.1f;   ///< Hessian regularization strength (grid-searched)
  HvpMode hvp_mode = HvpMode::kExact;
  RegNorm reg_norm = RegNorm::kL2;
  /// Perturb every parameter tensor (true) or only is_weight tensors (false).
  /// The paper perturbs "the weight tensors from all the layers".
  bool perturb_all_params = true;
  float fd_eps = 1e-2f;  ///< finite-difference step for HvpMode::kFiniteDiff
};

class HeroMethod : public optim::TrainingMethod {
 public:
  explicit HeroMethod(const HeroConfig& config) : config_(config) {}

  optim::StepResult step(optim::StepContext& ctx) override;
  std::string name() const override { return "hero"; }

  const HeroConfig& config() const { return config_; }

 private:
  HeroConfig config_;
};

}  // namespace hero::core
