#include "core/trainer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "data/loader.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"

namespace hero::core {

double measure_hessian_norm(nn::Module& model, const data::Dataset& train, std::int64_t sample,
                            float probe_h) {
  const std::int64_t count = std::min<std::int64_t>(sample, train.size());
  const data::Dataset part = train.slice(0, count);
  data::Batch batch{part.features, part.labels};

  std::vector<ag::Variable> params;
  for (nn::Parameter* p : model.parameters()) params.push_back(p->var);

  const bool was_training = model.training();
  model.set_training(true);
  double result = 0.0;
  {
    nn::BatchNormFreezeGuard bn_freeze;
    auto closure = [&model, &batch]() { return optim::batch_loss(model, batch); };
    result = hessian::hessian_norm_along_gradient(closure, params, probe_h);
  }
  model.set_training(was_training);
  return result;
}

TrainResult train(nn::Module& model, optim::TrainingMethod& method, const data::Dataset& train,
                  const data::Dataset& test, const TrainerConfig& config) {
  HERO_CHECK(config.epochs >= 1);
  Rng seed_root(config.seed + 0x5eedULL);
  data::DataLoader loader(train, config.batch_size, /*shuffle=*/true, seed_root.split(1));
  Rng augment_rng = seed_root.split(2);

  optim::SgdConfig sgd_config;
  sgd_config.lr = config.base_lr;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  optim::Sgd sgd(model.parameters(), sgd_config);

  std::unique_ptr<optim::LrSchedule> schedule;
  if (config.cosine_lr) {
    schedule = std::make_unique<optim::CosineSchedule>(config.base_lr);
  } else {
    schedule = std::make_unique<optim::ConstantSchedule>(config.base_lr);
  }

  const std::int64_t total_steps =
      static_cast<std::int64_t>(config.epochs) * loader.batches_per_epoch();
  std::int64_t step = 0;

  TrainResult result;
  result.history.reserve(static_cast<std::size_t>(config.epochs));
  std::vector<Tensor> grads;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    model.set_training(true);
    double loss_sum = 0.0;
    std::int64_t loss_count = 0;
    for (data::Batch& batch : loader.epoch()) {
      if (config.augment && batch.x.ndim() == 4) {
        batch.x = data::augment_shift_flip(batch.x, config.augment_max_shift, augment_rng);
      }
      const float lr = schedule->lr(step, total_steps);
      sgd.set_lr(lr);
      const auto step_result = method.compute_gradients(model, batch, grads);
      sgd.step_with(grads);
      loss_sum += step_result.loss;
      ++loss_count;
      ++step;
    }

    EpochRecord record;
    record.epoch = epoch;
    record.lr = sgd.lr();
    record.train_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(1, loss_count));
    const auto train_eval = optim::evaluate(model, train);
    const auto test_eval = optim::evaluate(model, test);
    record.train_accuracy = train_eval.accuracy;
    record.test_accuracy = test_eval.accuracy;
    record.generalization_gap = train_eval.accuracy - test_eval.accuracy;
    if (config.record_hessian) {
      record.hessian_norm =
          measure_hessian_norm(model, train, config.hessian_sample, config.hessian_probe_h);
    }
    if (config.verbose) {
      std::printf("[%s] epoch %3d lr %.4f loss %.4f train %.4f test %.4f\n",
                  method.name().c_str(), epoch, record.lr, record.train_loss,
                  record.train_accuracy, record.test_accuracy);
      std::fflush(stdout);
    }
    result.history.push_back(record);
  }

  result.final_train_accuracy = result.history.back().train_accuracy;
  result.final_test_accuracy = result.history.back().test_accuracy;
  return result;
}

}  // namespace hero::core
