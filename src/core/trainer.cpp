#include "core/trainer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "data/loader.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"
#include "optim/step.hpp"

namespace hero::core {

double measure_hessian_norm(nn::Module& model, const data::Dataset& train, std::int64_t sample,
                            float probe_h) {
  const std::int64_t count = std::min<std::int64_t>(sample, train.size());
  const data::Dataset part = train.slice(0, count);
  data::Batch batch{part.features, part.labels};

  std::vector<ag::Variable> params;
  for (nn::Parameter* p : model.parameters()) params.push_back(p->var);

  const bool was_training = model.training();
  model.set_training(true);
  double result = 0.0;
  {
    nn::BatchNormFreezeGuard bn_freeze;
    auto closure = [&model, &batch]() { return optim::batch_loss(model, batch); };
    result = hessian::hessian_norm_along_gradient(closure, params, probe_h);
  }
  model.set_training(was_training);
  return result;
}

Trainer::EpochHook record_hessian_norm(std::int64_t sample, float probe_h) {
  return [sample, probe_h](const EpochEvent& event) {
    event.record.hessian_norm =
        measure_hessian_norm(event.model, event.train, sample, probe_h);
  };
}

Trainer::EpochHook track_generalization_gap(std::vector<double>* out) {
  HERO_CHECK_MSG(out != nullptr, "track_generalization_gap needs an output vector");
  return [out](const EpochEvent& event) { out->push_back(event.record.generalization_gap); };
}

Trainer::Trainer(nn::Module& model, optim::TrainingMethod& method, TrainerConfig config)
    : model_(&model), method_(&method), config_(config) {
  HERO_CHECK(config_.epochs >= 1);
}

Trainer& Trainer::on_step(StepHook hook) {
  step_hooks_.push_back(std::move(hook));
  return *this;
}

Trainer& Trainer::on_epoch_end(EpochHook hook) {
  epoch_hooks_.push_back(std::move(hook));
  return *this;
}

TrainResult Trainer::fit(const data::Dataset& train, const data::Dataset& test) {
  Rng seed_root(config_.seed + 0x5eedULL);
  data::DataLoader loader(train, config_.batch_size, /*shuffle=*/true, seed_root.split(1));
  Rng augment_rng = seed_root.split(2);

  optim::SgdConfig sgd_config;
  sgd_config.lr = config_.base_lr;
  sgd_config.momentum = config_.momentum;
  sgd_config.weight_decay = config_.weight_decay;
  optim::Sgd sgd(model_->parameters(), sgd_config);

  std::unique_ptr<optim::LrSchedule> schedule;
  if (config_.cosine_lr) {
    schedule = std::make_unique<optim::CosineSchedule>(config_.base_lr);
  } else {
    schedule = std::make_unique<optim::ConstantSchedule>(config_.base_lr);
  }

  const std::int64_t total_steps =
      static_cast<std::int64_t>(config_.epochs) * loader.batches_per_epoch();
  std::int64_t step = 0;

  TrainResult result;
  result.history.reserve(static_cast<std::size_t>(config_.epochs));
  // One context for the whole run: gradient and scratch buffers are
  // allocated once and reused by every step.
  optim::StepContext ctx(*model_, seed_root.split(3));

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model_->set_training(true);
    double loss_sum = 0.0;
    std::int64_t loss_count = 0;
    for (data::Batch& batch : loader.epoch()) {
      if (config_.augment && batch.x.ndim() == 4) {
        batch.x = data::augment_shift_flip(batch.x, config_.augment_max_shift, augment_rng);
      }
      const float lr = schedule->lr(step, total_steps);
      sgd.set_lr(lr);
      ctx.begin_step(batch, step, epoch);
      const optim::StepResult step_result = method_->step(ctx);
      sgd.step_with(ctx.grads());
      loss_sum += step_result.loss;
      ++loss_count;
      ++step;
      for (const StepHook& hook : step_hooks_) {
        hook(StepEvent{step - 1, epoch, lr, step_result, *model_});
      }
    }

    EpochRecord record;
    record.epoch = epoch;
    record.lr = sgd.lr();
    record.train_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(1, loss_count));
    const auto train_eval = optim::evaluate(*model_, train);
    const auto test_eval = optim::evaluate(*model_, test);
    record.train_accuracy = train_eval.accuracy;
    record.test_accuracy = test_eval.accuracy;
    record.generalization_gap = train_eval.accuracy - test_eval.accuracy;
    for (const EpochHook& hook : epoch_hooks_) {
      hook(EpochEvent{record, *model_, train, test});
    }
    if (config_.verbose) {
      std::printf("[%s] epoch %3d lr %.4f loss %.4f train %.4f test %.4f\n",
                  method_->name().c_str(), epoch, record.lr, record.train_loss,
                  record.train_accuracy, record.test_accuracy);
      std::fflush(stdout);
    }
    result.history.push_back(record);
  }

  result.final_train_accuracy = result.history.back().train_accuracy;
  result.final_test_accuracy = result.history.back().test_accuracy;
  return result;
}

}  // namespace hero::core
