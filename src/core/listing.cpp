#include "core/listing.hpp"

#include <sstream>

#include "deploy/inference.hpp"
#include "ir/backend.hpp"
#include "ir/patterns.hpp"
#include "net/server.hpp"
#include "net/traffic.hpp"
#include "nn/models.hpp"
#include "obs/trace.hpp"
#include "optim/registry.hpp"
#include "quant/planner.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"

namespace hero::core {

namespace {

std::string keys_suffix(const std::vector<std::string>& keys) {
  if (keys.empty()) return "";
  return "  (keys: " + join_names(keys) + ")";
}

}  // namespace

std::string describe_registries() {
  std::ostringstream os;

  os << "training methods (--method=name:key=value,...):\n";
  auto& methods = optim::MethodRegistry::instance();
  for (const std::string& name : methods.names()) {
    os << "  " << name << keys_suffix(methods.accepted_keys(name)) << "\n";
  }

  os << "quantizers (spec 'name:bits=B[,key...]'):\n";
  auto& quantizers = quant::QuantizerRegistry::instance();
  for (const std::string& name : quantizers.names()) {
    // Default-configured instance's describe() labels the scheme/grain.
    os << "  " << name << " — " << quantizers.create(name)->describe()
       << keys_suffix(quantizers.accepted_keys(name)) << "\n";
  }

  os << "quantization planners (spec 'name:<args>'):\n";
  for (const std::string& name : quant::PlannerRegistry::instance().names()) {
    os << "  " << name << "\n";
  }

  os << "model architectures (spec 'name:key=value,...'):\n";
  auto& models = nn::ModelRegistry::instance();
  for (const std::string& name : models.names()) {
    os << "  " << name << " — " << models.describe(name)
       << keys_suffix(models.accepted_keys(name)) << "\n";
  }

  const deploy::SessionOptions session_defaults;
  os << "ir (src/ir: inference graph IR + optimizing executor):\n";
  os << "  executor knob (--executor=module|ir) — default "
     << deploy::executor_kind_name(session_defaults.executor)
     << "; every rewrite is bit-preserving vs the module replay\n";
  os << "  patterns (artifact-load rewrites, pipeline order):\n";
  for (const ir::Pattern& pattern : ir::patterns()) {
    os << "    " << pattern.name << " — " << pattern.description << "\n";
  }
  os << "  backends — " << join_names(ir::BackendRegistry::instance().names())
     << " (default " << session_defaults.ir_backend << ")\n";

  // Serving is knob-driven rather than registry-driven, but it belongs in
  // the same "what can this binary be asked to build?" listing: these are
  // the defaults bench_serving/model_server flags override.
  const serve::ServerConfig defaults;
  const serve::ModelStore::Config store_defaults;
  os << "serving (src/serve: ModelStore + micro-batching Server):\n";
  os << "  server knobs — workers=" << defaults.workers
     << ", max_batch=" << defaults.max_batch
     << ", max_delay_us=" << defaults.max_delay_us
     << ", max_queue_rows=" << defaults.max_queue_rows
     << ", adaptive_delay=" << (defaults.adaptive_delay ? "on" : "off") << "\n";
  os << "  admission — submit() blocks at the queue bound, try_submit() rejects "
        "(ServerStats rejected/max_queue_depth/max_queued_rows)\n";
  os << "  sla classes — ";
  for (const serve::SlaClass sla :
       {serve::SlaClass::kThroughput, serve::SlaClass::kStandard,
        serve::SlaClass::kLatency}) {
    os << serve::sla_name(sla) << (sla == serve::SlaClass::kLatency ? "" : ", ");
  }
  os << " (claim priority + coalescing-delay scaling; set_sla per model)\n";
  os << "  store knobs — max_bytes=" << store_defaults.max_bytes
     << " (LRU over decoded fp32 footprints)\n";
  const net::NetServerConfig net_defaults;
  os << "net front-end (src/net: HNET/" << net::kVersion
     << " wire protocol on 127.0.0.1):\n";
  os << "  net knobs — max_inflight=" << net_defaults.max_inflight
     << ", drain_timeout_us=" << net_defaults.drain_timeout_us
     << ", max_frame_body=" << net::kMaxFrameBody << " bytes\n";
  os << "  traffic traces (bench_net_serving --trace) — ";
  for (const net::TraceKind kind : {net::TraceKind::kPoisson, net::TraceKind::kBursty}) {
    os << net::trace_kind_name(kind) << (kind == net::TraceKind::kBursty ? "" : ", ");
  }
  os << " (seeded, open-loop)\n";

  // Observability rides along everywhere above; list the instruments so a
  // snapshot or trace reader knows what names to expect.
  const obs::TraceSink::Config trace_defaults;
  os << "observability (src/obs: metrics registry + request-scoped tracing):\n";
  os << "  metrics — counters store.*, net.stats_queries; gauges "
        "serve.queue.depth_max, serve.queue.rows_max, net.inflight_max; "
        "latency histograms net.decode_us, serve.queue_us, serve.execute_us, "
        "deploy.predict_us, ir.node_us\n";
  os << "  spans — net.request > {net.decode, net.admission, serve.queue, "
        "serve.coalesce, serve.execute > deploy.predict > per-IR-node}, "
        "net.write; pool.job (runtime)\n";
  os << "  trace sink knobs — ring_capacity=" << trace_defaults.ring_capacity
     << " spans/thread (drop-oldest + drop counter), max_threads="
     << trace_defaults.max_threads << "\n";
  os << "  wire — kStatsRequest/kStatsResponse frames serve the snapshot "
        "JSON; benches export Chrome trace JSON via --trace-out\n";
  return os.str();
}

}  // namespace hero::core
