#include "core/listing.hpp"

#include <sstream>

#include "nn/models.hpp"
#include "optim/registry.hpp"
#include "quant/planner.hpp"
#include "quant/quantizer.hpp"
#include "serve/server.hpp"

namespace hero::core {

namespace {

std::string keys_suffix(const std::vector<std::string>& keys) {
  if (keys.empty()) return "";
  return "  (keys: " + join_names(keys) + ")";
}

}  // namespace

std::string describe_registries() {
  std::ostringstream os;

  os << "training methods (--method=name:key=value,...):\n";
  auto& methods = optim::MethodRegistry::instance();
  for (const std::string& name : methods.names()) {
    os << "  " << name << keys_suffix(methods.accepted_keys(name)) << "\n";
  }

  os << "quantizers (spec 'name:bits=B[,key...]'):\n";
  auto& quantizers = quant::QuantizerRegistry::instance();
  for (const std::string& name : quantizers.names()) {
    // Default-configured instance's describe() labels the scheme/grain.
    os << "  " << name << " — " << quantizers.create(name)->describe()
       << keys_suffix(quantizers.accepted_keys(name)) << "\n";
  }

  os << "quantization planners (spec 'name:<args>'):\n";
  for (const std::string& name : quant::PlannerRegistry::instance().names()) {
    os << "  " << name << "\n";
  }

  os << "model architectures (spec 'name:key=value,...'):\n";
  auto& models = nn::ModelRegistry::instance();
  for (const std::string& name : models.names()) {
    os << "  " << name << " — " << models.describe(name)
       << keys_suffix(models.accepted_keys(name)) << "\n";
  }

  // Serving is knob-driven rather than registry-driven, but it belongs in
  // the same "what can this binary be asked to build?" listing: these are
  // the defaults bench_serving/model_server flags override.
  const serve::ServerConfig defaults;
  const serve::ModelStore::Config store_defaults;
  os << "serving (src/serve: ModelStore + micro-batching Server):\n";
  os << "  server knobs — workers=" << defaults.workers
     << ", max_batch=" << defaults.max_batch
     << ", max_delay_us=" << defaults.max_delay_us
     << ", max_queue_rows=" << defaults.max_queue_rows << "\n";
  os << "  store knobs — max_bytes=" << store_defaults.max_bytes
     << " (LRU over decoded fp32 footprints)\n";
  return os.str();
}

}  // namespace hero::core
