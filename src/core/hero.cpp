#include "core/hero.hpp"

#include "autograd/functional.hpp"
#include "common/check.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"
#include "optim/registry.hpp"

namespace hero::core {

namespace {

using hessian::ParamVector;

/// Eq. (15) probe restricted to the perturbed subset: zero elsewhere.
/// Writes into preallocated `z` (StepContext scratch), no allocation.
void masked_probe(const std::vector<nn::Parameter*>& plist,
                  const std::vector<ag::Variable>& params, const ParamVector& g,
                  bool perturb_all, ParamVector& z) {
  hessian::hero_probe(params, g, z);
  if (!perturb_all) {
    for (std::size_t i = 0; i < plist.size(); ++i) {
      if (!plist[i]->is_weight) z[i].fill_(0.0f);
    }
  }
}

}  // namespace

optim::StepResult HeroMethod::step(optim::StepContext& ctx) {
  nn::Module& model = ctx.model();
  const data::Batch& batch = ctx.batch();
  const std::vector<nn::Parameter*>& plist = ctx.params();
  const std::vector<ag::Variable>& params = ctx.param_vars();

  // (1) Clean gradient g_i = ∇L_B(W_i). This forward is the one that updates
  // BatchNorm running statistics for the step.
  const ag::Variable loss = optim::batch_loss(model, batch);
  const float loss_value = loss.value().item();
  const auto gs = ag::grad(loss, params);
  ParamVector& g = ctx.scratch(0);
  for (std::size_t i = 0; i < params.size(); ++i) g[i].copy_(gs[i].value());

  // (2)-(3) Probe and perturb to W* = W + h·z.
  ParamVector& z = ctx.scratch(1);
  masked_probe(plist, params, g, config_.perturb_all_params, z);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value().add_(z[i], config_.h);
  }

  std::vector<Tensor>& grads = ctx.grads();
  float regularizer = 0.0f;
  {
    nn::BatchNormFreezeGuard bn_freeze;
    if (config_.hvp_mode == HvpMode::kExact) {
      // (4) Perturbed gradient with a differentiable graph, then
      // G = Σ_i ‖∇L(W*_i) − g_i‖ and (5) ∇_{W*}G via double backprop.
      const ag::Variable loss_star = optim::batch_loss(model, batch);
      const auto gs_star = ag::grad(loss_star, params, /*create_graph=*/true);
      ag::Variable reg;
      for (std::size_t i = 0; i < params.size(); ++i) {
        const ag::Variable delta = ag::sub(gs_star[i], ag::Variable::constant(g[i]));
        const ag::Variable term = config_.reg_norm == RegNorm::kL2
                                      ? ag::l2_norm(delta)
                                      : ag::sum_squares(delta);
        reg = reg.defined() ? ag::add(reg, term) : term;
      }
      regularizer = reg.value().item();
      const auto hess_grads = ag::grad(reg, params);
      for (std::size_t i = 0; i < params.size(); ++i) {
        grads[i].copy_(gs_star[i].value());
        grads[i].add_(hess_grads[i].value(), config_.gamma);
      }
    } else {
      // Finite-difference path: ∇_{W*}G = H(W*)·u with per-layer blocks
      // u_i = Δg_i/‖Δg_i‖ (kL2) or u_i = 2·Δg_i (kL2Squared); H symmetric.
      const ag::Variable loss_star = optim::batch_loss(model, batch);
      const auto gs_star = ag::grad(loss_star, params);
      ParamVector& g_star = ctx.scratch(2);
      for (std::size_t i = 0; i < params.size(); ++i) g_star[i].copy_(gs_star[i].value());

      ParamVector& u = ctx.scratch(3);
      for (std::size_t i = 0; i < params.size(); ++i) {
        u[i].copy_(g_star[i]);
        u[i].add_(g[i], -1.0f);
        const float delta_norm = u[i].l2_norm();
        if (config_.reg_norm == RegNorm::kL2) {
          regularizer += delta_norm;
          if (delta_norm > 0.0f) u[i].mul_(1.0f / delta_norm);
        } else {
          regularizer += delta_norm * delta_norm;
          u[i].mul_(2.0f);
        }
      }

      auto loss_closure = [&model, &batch]() { return optim::batch_loss(model, batch); };
      const ParamVector hvp = hessian::hvp_finite_diff(loss_closure, params, u, config_.fd_eps);
      for (std::size_t i = 0; i < params.size(); ++i) {
        grads[i].copy_(g_star[i]);
        grads[i].add_(hvp[i], config_.gamma);
      }
    }
  }

  // Restore W from W*.
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value().add_(z[i], -config_.h);
  }

  optim::StepResult result;
  result.loss = loss_value;
  result.grad_norm = ctx.grad_norm();
  result.regularizer = regularizer;
  result.perturbation_norm = config_.h * optim::param_vector_norm(z);
  return result;
}

HERO_REGISTER_METHOD(
    "hero",
    [](const optim::MethodConfig& config) {
  HeroConfig hero_config;
  hero_config.h = optim::config_float(config, "h", hero_config.h);
  hero_config.gamma = optim::config_float(config, "gamma", hero_config.gamma);
  const std::string hvp = optim::config_str(config, "hvp", "exact");
  if (hvp == "exact") {
    hero_config.hvp_mode = HvpMode::kExact;
  } else if (hvp == "fd" || hvp == "finite_diff") {
    hero_config.hvp_mode = HvpMode::kFiniteDiff;
  } else {
    throw Error("hero config key 'hvp' must be 'exact' or 'fd', got '" + hvp + "'");
  }
  const std::string reg_norm = optim::config_str(config, "reg_norm", "l2");
  if (reg_norm == "l2") {
    hero_config.reg_norm = RegNorm::kL2;
  } else if (reg_norm == "l2_squared") {
    hero_config.reg_norm = RegNorm::kL2Squared;
  } else {
    throw Error("hero config key 'reg_norm' must be 'l2' or 'l2_squared', got '" +
                reg_norm + "'");
  }
  hero_config.perturb_all_params =
      optim::config_bool(config, "perturb_all", hero_config.perturb_all_params);
  hero_config.fd_eps = optim::config_float(config, "fd_eps", hero_config.fd_eps);
  return std::make_unique<HeroMethod>(hero_config);
    },
    {"h", "gamma", "hvp", "reg_norm", "perturb_all", "fd_eps"})

}  // namespace hero::core
