#include "core/hero.hpp"

#include "autograd/functional.hpp"
#include "common/check.hpp"
#include "hessian/spectral.hpp"
#include "nn/layers.hpp"

namespace hero::core {

namespace {

using hessian::ParamVector;

/// Eq. (15) probe restricted to the perturbed subset: zero elsewhere.
ParamVector masked_probe(const std::vector<nn::Parameter*>& plist,
                         const std::vector<ag::Variable>& params, const ParamVector& g,
                         bool perturb_all) {
  ParamVector z = hessian::hero_probe(params, g);
  if (!perturb_all) {
    for (std::size_t i = 0; i < plist.size(); ++i) {
      if (!plist[i]->is_weight) z[i].fill_(0.0f);
    }
  }
  return z;
}

}  // namespace

optim::StepResult HeroMethod::compute_gradients(nn::Module& model, const data::Batch& batch,
                                                std::vector<Tensor>& grads) {
  const std::vector<nn::Parameter*> plist = model.parameters();
  std::vector<ag::Variable> params;
  params.reserve(plist.size());
  for (nn::Parameter* p : plist) params.push_back(p->var);

  // (1) Clean gradient g_i = ∇L_B(W_i). This forward is the one that updates
  // BatchNorm running statistics for the step.
  const ag::Variable loss = optim::batch_loss(model, batch);
  const float loss_value = loss.value().item();
  const auto gs = ag::grad(loss, params);
  ParamVector g;
  g.reserve(gs.size());
  for (const auto& gi : gs) g.push_back(gi.value().clone());

  // (2)-(3) Probe and perturb to W* = W + h·z.
  const ParamVector z = masked_probe(plist, params, g, config_.perturb_all_params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value().add_(z[i], config_.h);
  }

  grads.clear();
  grads.reserve(params.size());
  {
    nn::BatchNormFreezeGuard bn_freeze;
    if (config_.hvp_mode == HvpMode::kExact) {
      // (4) Perturbed gradient with a differentiable graph, then
      // G = Σ_i ‖∇L(W*_i) − g_i‖ and (5) ∇_{W*}G via double backprop.
      const ag::Variable loss_star = optim::batch_loss(model, batch);
      const auto gs_star = ag::grad(loss_star, params, /*create_graph=*/true);
      ag::Variable reg;
      for (std::size_t i = 0; i < params.size(); ++i) {
        const ag::Variable delta = ag::sub(gs_star[i], ag::Variable::constant(g[i]));
        const ag::Variable term = config_.reg_norm == RegNorm::kL2
                                      ? ag::l2_norm(delta)
                                      : ag::sum_squares(delta);
        reg = reg.defined() ? ag::add(reg, term) : term;
      }
      last_regularizer_ = reg.value().item();
      const auto hess_grads = ag::grad(reg, params);
      for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor total = gs_star[i].value().clone();
        total.add_(hess_grads[i].value(), config_.gamma);
        grads.push_back(std::move(total));
      }
    } else {
      // Finite-difference path: ∇_{W*}G = H(W*)·u with per-layer blocks
      // u_i = Δg_i/‖Δg_i‖ (kL2) or u_i = 2·Δg_i (kL2Squared); H symmetric.
      const ag::Variable loss_star = optim::batch_loss(model, batch);
      const auto gs_star = ag::grad(loss_star, params);
      ParamVector g_star;
      g_star.reserve(gs_star.size());
      for (const auto& gi : gs_star) g_star.push_back(gi.value().clone());

      ParamVector u;
      u.reserve(params.size());
      float reg_value = 0.0f;
      for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor delta = g_star[i].clone();
        delta.add_(g[i], -1.0f);
        const float delta_norm = delta.l2_norm();
        if (config_.reg_norm == RegNorm::kL2) {
          reg_value += delta_norm;
          if (delta_norm > 0.0f) delta.mul_(1.0f / delta_norm);
        } else {
          reg_value += delta_norm * delta_norm;
          delta.mul_(2.0f);
        }
        u.push_back(std::move(delta));
      }
      last_regularizer_ = reg_value;

      auto loss_closure = [&model, &batch]() { return optim::batch_loss(model, batch); };
      const ParamVector hvp = hessian::hvp_finite_diff(loss_closure, params, u, config_.fd_eps);
      for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor total = g_star[i].clone();
        total.add_(hvp[i], config_.gamma);
        grads.push_back(std::move(total));
      }
    }
  }

  // Restore W from W*.
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value().add_(z[i], -config_.h);
  }
  return {loss_value};
}

}  // namespace hero::core
