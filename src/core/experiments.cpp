#include "core/experiments.hpp"

#include "common/check.hpp"

namespace hero::core {

float default_h(const std::string& dataset_name) {
  // §5.1 uses 0.5 for CIFAR-10 and 1.0 for the rest at full scale; the
  // micro-scale calibration keeps the same 1:2 ratio (see default_h docs).
  return dataset_name == "c10" ? 0.01f : 0.02f;
}

std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<int>& bits,
                                           const quant::QuantConfig& base) {
  std::vector<QuantPoint> points;
  points.reserve(bits.size() + 1);
  for (const int b : bits) {
    quant::QuantConfig config = base;
    config.bits = b;
    quant::ScopedWeightQuantization scoped(model, config);
    points.push_back({b, optim::evaluate(model, test).accuracy});
  }
  points.push_back({0, optim::evaluate(model, test).accuracy});  // full precision
  return points;
}

}  // namespace hero::core
