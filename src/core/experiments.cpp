#include "core/experiments.hpp"

#include "common/check.hpp"

namespace hero::core {

float default_h(const std::string& dataset_name) {
  // §5.1 uses 0.5 for CIFAR-10 and 1.0 for the rest at full scale; the
  // micro-scale calibration keeps the same 1:2 ratio (see default_h docs).
  return dataset_name == "c10" ? 0.01f : 0.02f;
}

std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<int>& bits,
                                           const std::string& quantizer) {
  std::vector<QuantPoint> points;
  points.reserve(bits.size() + 1);
  for (const int b : bits) {
    const std::string spec = quant::with_bits(quantizer, b);
    quant::ScopedWeightQuantization scoped(model, spec);
    points.push_back({b, optim::evaluate(model, test).accuracy, static_cast<double>(b), spec});
  }
  points.push_back({0, optim::evaluate(model, test).accuracy, 0.0, "fp32"});
  return points;
}

QuantPoint evaluate_planned(nn::Module& model, const data::Dataset& test,
                            const std::string& planner, const quant::PlannerContext& ctx) {
  const quant::QuantPlan plan = quant::plan_quantization(model, planner, ctx);
  const double avg_bits = plan.average_bits();
  quant::ScopedWeightQuantization scoped(model, plan);
  return {static_cast<int>(avg_bits + 0.5), optim::evaluate(model, test).accuracy, avg_bits,
          planner};
}

std::vector<QuantPoint> quantization_sweep(nn::Module& model, const data::Dataset& test,
                                           const std::vector<std::string>& planners,
                                           const quant::PlannerContext& ctx) {
  std::vector<QuantPoint> points;
  points.reserve(planners.size() + 1);
  for (const std::string& planner : planners) {
    points.push_back(evaluate_planned(model, test, planner, ctx));
  }
  points.push_back({0, optim::evaluate(model, test).accuracy, 0.0, "fp32"});
  return points;
}

}  // namespace hero::core
